package conformance

// Delta-debugging shrinker. Given a failing program and a predicate that
// re-checks failure, Shrink searches for a smaller program that still
// fails, under a bounded number of predicate evaluations (each evaluation
// is three full engine runs, so the budget is the cost knob).
//
// Every transformation is a monotone reduction — remove ops, remove
// rounds, drop rank identities that own no ops, halve op lengths, shrink
// the file or the segment geometry — never a shift of offsets to new
// bytes. Reductions therefore preserve the program's one invariant
// (cross-rank write disjointness: a subset of a disjoint byte assignment
// is still disjoint), and every candidate is Validate-gated anyway.

// Predicate reports whether a candidate program still fails. It must be
// pure: evaluating a candidate must not mutate it.
type Predicate func(*Program) bool

// ShrinkStats summarizes one Shrink run.
type ShrinkStats struct {
	Evals        int // predicate evaluations spent
	Improvements int // accepted reductions
}

type shrinker struct {
	failing Predicate
	budget  int
	stats   ShrinkStats
}

// Shrink reduces p to a smaller program that still fails the predicate.
// p itself must already fail (callers have just observed it failing; it
// is not re-evaluated). The returned program is always valid and failing.
func Shrink(p *Program, failing Predicate, maxEvals int) (*Program, ShrinkStats) {
	s := &shrinker{failing: failing, budget: maxEvals}
	cur := p.Clone()
	for {
		before := s.stats.Improvements
		cur = s.dropRounds(cur)
		cur = s.ddminOps(cur, true)
		cur = s.ddminOps(cur, false)
		cur = s.dropIdleRanks(cur)
		cur = s.halveLens(cur)
		cur = s.shrinkGeometry(cur)
		if s.stats.Improvements == before || s.budget <= 0 {
			return cur, s.stats
		}
	}
}

// accepts evaluates a candidate, charging the budget, and reports whether
// it is a valid still-failing reduction.
func (s *shrinker) accepts(cand *Program) bool {
	if s.budget <= 0 {
		return false
	}
	if cand.Validate() != nil {
		return false
	}
	s.budget--
	s.stats.Evals++
	if s.failing(cand) {
		s.stats.Improvements++
		return true
	}
	return false
}

// dropRounds tries removing whole rounds, later rounds first (dropping an
// early write round changes what later rewrites overwrite, so the tail is
// the cheaper guess).
func (s *shrinker) dropRounds(p *Program) *Program {
	for _, writes := range []bool{true, false} {
		for i := len(rounds(p, writes)) - 1; i >= 0; i-- {
			cand := p.Clone()
			rs := rounds(cand, writes)
			setRounds(cand, writes, append(rs[:i:i], rs[i+1:]...))
			if s.accepts(cand) {
				p = cand
			}
		}
	}
	return p
}

func rounds(p *Program, writes bool) []Round {
	if writes {
		return p.WriteRounds
	}
	return p.ReadRounds
}

func setRounds(p *Program, writes bool, rs []Round) {
	if writes {
		p.WriteRounds = rs
	} else {
		p.ReadRounds = rs
	}
}

// ddminOps runs the classic ddmin loop over each round's op list.
func (s *shrinker) ddminOps(p *Program, writes bool) *Program {
	for ri := range rounds(p, writes) {
		n := 2
		for len(rounds(p, writes)[ri].Ops) >= 2 && s.budget > 0 {
			ops := rounds(p, writes)[ri].Ops
			if n > len(ops) {
				n = len(ops)
			}
			reduced := false
			for chunk := 0; chunk < n; chunk++ {
				lo := chunk * len(ops) / n
				hi := (chunk + 1) * len(ops) / n
				if hi <= lo {
					continue
				}
				cand := p.Clone()
				keep := make([]Op, 0, len(ops)-(hi-lo))
				keep = append(keep, ops[:lo]...)
				keep = append(keep, ops[hi:]...)
				rounds(cand, writes)[ri].Ops = keep
				if s.accepts(cand) {
					p = cand
					n = 2
					reduced = true
					break
				}
			}
			if !reduced {
				if n >= len(ops) {
					break
				}
				n *= 2
			}
		}
	}
	return p
}

// dropIdleRanks removes rank identities that no longer own any op,
// renumbering the survivors densely.
func (s *shrinker) dropIdleRanks(p *Program) *Program {
	used := make([]bool, p.Procs)
	for _, rs := range [][]Round{p.WriteRounds, p.ReadRounds} {
		for _, r := range rs {
			for _, op := range r.Ops {
				used[op.Rank] = true
			}
		}
	}
	remap := make([]int, p.Procs)
	next := 0
	for r := 0; r < p.Procs; r++ {
		remap[r] = next
		if used[r] {
			next++
		}
	}
	if next == p.Procs || next == 0 {
		return p
	}
	cand := p.Clone()
	cand.Procs = next
	// Fewer ranks shrink the level-2 capacity; grow NumSegments to keep
	// the file addressable (segment count is not part of minimality —
	// shrinkGeometry re-reduces it afterwards if it can).
	for cand.FileBytes > cand.Capacity() {
		cand.NumSegments *= 2
	}
	for _, rs := range [][]Round{cand.WriteRounds, cand.ReadRounds} {
		for i := range rs {
			for j := range rs[i].Ops {
				rs[i].Ops[j].Rank = remap[rs[i].Ops[j].Rank]
			}
		}
	}
	if s.accepts(cand) {
		return cand
	}
	return p
}

// halveLens tries halving individual op lengths (keeping offsets, so the
// written byte set only shrinks).
func (s *shrinker) halveLens(p *Program) *Program {
	for _, writes := range []bool{true, false} {
		for ri := range rounds(p, writes) {
			for oi := range rounds(p, writes)[ri].Ops {
				if rounds(p, writes)[ri].Ops[oi].Len < 2 {
					continue
				}
				cand := p.Clone()
				rounds(cand, writes)[ri].Ops[oi].Len /= 2
				if s.accepts(cand) {
					p = cand
				}
			}
		}
	}
	return p
}

// shrinkGeometry trims the file to the ops' reach and tries smaller
// segment counts and sizes (layout changes are fair game: the candidate
// only survives if it still fails).
func (s *shrinker) shrinkGeometry(p *Program) *Program {
	var maxEnd int64
	for _, rs := range [][]Round{p.WriteRounds, p.ReadRounds} {
		for _, r := range rs {
			for _, op := range r.Ops {
				if op.End() > maxEnd {
					maxEnd = op.End()
				}
			}
		}
	}
	if maxEnd >= 1 && maxEnd < p.FileBytes {
		cand := p.Clone()
		cand.FileBytes = maxEnd
		if s.accepts(cand) {
			p = cand
		}
	}
	for p.NumSegments > 1 {
		cand := p.Clone()
		cand.NumSegments = p.NumSegments / 2
		if !s.accepts(cand) {
			break
		}
		p = cand
	}
	for p.SegmentSize > 8 {
		cand := p.Clone()
		cand.SegmentSize = p.SegmentSize / 2
		if !s.accepts(cand) {
			break
		}
		p = cand
	}
	return p
}
