package conformance

// The delegation-tier engine driver (knob class 6): the program replayed
// through internal/delegate, with Files concurrently open files per
// client. Every file sees the same ops, but payload bytes are XORed with
// a per-file constant, so any cross-file bleed — shared staging, a
// misrouted domain piece, pooled counters — shows up as a byte or
// counter divergence against that file's own truth. ServerRanks == 0
// routes the same program through the tier's pass-through path, keeping
// the off switch inside the differential harness too.

import (
	"fmt"
	"sync"

	"github.com/tcio/tcio/internal/delegate"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/tcio"
	"github.com/tcio/tcio/internal/trace"
)

// fileConst is the XOR mask distinguishing file fi's payload stream.
func fileConst(fi int) byte { return byte(fi * 0x5B) }

// fileTruth derives file fi's ground truth: the base truth with every
// written byte XORed by the file constant. Unwritten bytes stay zero in
// every file, so the mask is applied through the coverage map, not to
// the whole image.
func (p *Program) fileTruth(truth []byte, fi int) []byte {
	if fileConst(fi) == 0 {
		return truth
	}
	out := append([]byte(nil), truth...)
	for i, id := range p.CoverIDs() {
		if id >= 0 {
			out[i] ^= fileConst(fi)
		}
	}
	return out
}

// delegateName is the shared file name for file index fi.
func delegateName(fi int) string { return fmt.Sprintf("conform-del-%d.dat", fi) }

// delegateRun is the delegation engine's observable outcome.
type delegateRun struct {
	err      string   // first failing phase ("" = clean)
	images   [][]byte // per-file bytes after the write phase
	fsWrites int64    // file system write requests after the write phase

	// w and r are the per-file, per-client protocol counters of the write
	// and read phases; passW holds the pass-through tcio ledgers instead
	// when ServerRanks == 0.
	w, r  [][]delegate.Stats
	passW [][]tcio.Stats
	// servers and rservers are the write and read phases' per-server
	// counters (delegation only — the phases run in separate worlds, so
	// each server reports twice).
	servers  []delegate.ServerStats
	rservers []delegate.ServerStats
	// fsReads is the read phase's file system request count (the write
	// phase's reads, if any, are subtracted out).
	fsReads int64
}

func statsGrid(files, clients int) [][]delegate.Stats {
	g := make([][]delegate.Stats, files)
	for i := range g {
		g[i] = make([]delegate.Stats, clients)
	}
	return g
}

// runDelegate executes the program through the delegation tier.
func runDelegate(p *Program, truth []byte) *delegateRun {
	out := &delegateRun{}
	k := p.Knobs
	clients := p.Clients()
	truths := make([][]byte, k.Files)
	for fi := range truths {
		truths[fi] = p.fileTruth(truth, fi)
	}
	inj := p.newInjector()
	fs := p.newFS(inj)
	dcfg := delegate.Config{
		ServerRanks:       k.ServerRanks,
		QueueDepth:        k.QueueDepth,
		ServerCacheBlocks: k.ServerCacheBlocks,
		ReadQuantum:       k.ReadQuantum,
		TCIO:              p.tcioConfig(trace.New(0)),
	}

	out.w = statsGrid(k.Files, clients)
	out.passW = make([][]tcio.Stats, k.Files)
	for fi := range out.passW {
		out.passW[fi] = make([]tcio.Stats, clients)
	}
	col := &delegate.Collector{}
	wcfg := dcfg
	wcfg.Collect = col
	var mu sync.Mutex
	_, err := mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		return delegate.Run(c, wcfg, func(tr *delegate.Tier) error {
			files := make([]*delegate.File, k.Files)
			for fi := range files {
				f, err := tr.Open(delegateName(fi), tcio.WriteMode)
				if err != nil {
					return err
				}
				files[fi] = f
			}
			for _, round := range p.WriteRounds {
				for _, op := range round.Ops {
					if op.Rank != tr.ClientIndex() {
						continue
					}
					payload := p.Payload(op)
					for fi, f := range files {
						buf := payload
						if m := fileConst(fi); m != 0 {
							buf = append([]byte(nil), payload...)
							for i := range buf {
								buf[i] ^= m
							}
						}
						if err := f.WriteAt(op.Off, buf); err != nil {
							return err
						}
					}
				}
				for _, f := range files {
					if err := f.Flush(); err != nil {
						return err
					}
				}
			}
			for fi, f := range files {
				if err := f.Close(); err != nil {
					return err
				}
				mu.Lock()
				out.w[fi][tr.ClientIndex()] = f.Stats()
				if !tr.IsDelegated() {
					out.passW[fi][tr.ClientIndex()] = f.TCIO().Stats()
				}
				mu.Unlock()
			}
			return nil
		})
	})
	if err != nil {
		out.err = err.Error()
		return out
	}
	out.servers = col.Servers()
	out.fsWrites = fs.Stats().Writes
	out.images = make([][]byte, k.Files)
	for fi := range out.images {
		out.images[fi] = fs.Open(delegateName(fi)).Snapshot()
	}

	out.r = statsGrid(k.Files, clients)
	rcol := &delegate.Collector{}
	rcfg := dcfg
	rcfg.Collect = rcol
	fsReadsBefore := fs.Stats().Reads
	_, err = mpi.Run(mpi.Config{Procs: p.Procs, Machine: p.machine(), FS: fs, Faults: inj}, func(c *mpi.Comm) error {
		return delegate.Run(c, rcfg, func(tr *delegate.Tier) error {
			files := make([]*delegate.File, k.Files)
			for fi := range files {
				f, err := tr.Open(delegateName(fi), tcio.ReadMode)
				if err != nil {
					return err
				}
				files[fi] = f
			}
			type fileCapture struct {
				fi  int
				cap readCapture
			}
			var caps []fileCapture
			for _, round := range p.ReadRounds {
				for _, op := range round.Ops {
					if op.Rank != tr.ClientIndex() {
						continue
					}
					for fi, f := range files {
						dst := make([]byte, op.Len)
						if err := f.ReadAt(op.Off, dst); err != nil {
							return err
						}
						caps = append(caps, fileCapture{fi: fi, cap: readCapture{op: op, got: dst}})
					}
				}
				// Materialize the round's lazy reads: pass-through defers to
				// tcio's fetch queue, and delegated collective reads ship the
				// round's intent epoch here. (Synchronous delegated reads make
				// this a no-op.)
				for _, f := range files {
					if err := f.Fetch(); err != nil {
						return err
					}
				}
			}
			for fi, f := range files {
				if err := f.Close(); err != nil {
					return err
				}
				mu.Lock()
				out.r[fi][tr.ClientIndex()] = f.Stats()
				mu.Unlock()
			}
			for _, fc := range caps {
				if err := verifyCaptures(truths[fc.fi], []readCapture{fc.cap}); err != nil {
					return fmt.Errorf("file %d: %w", fc.fi, err)
				}
			}
			return nil
		})
	})
	if err != nil {
		out.err = err.Error()
		return out
	}
	out.rservers = rcol.Servers()
	out.fsReads = fs.Stats().Reads - fsReadsBefore
	return out
}

// checkDelegate applies the delegation-tier oracles: per-file images,
// per-file per-client call counters, flush-epoch structure, and the
// server-side conservation laws.
func (o *Outcome) checkDelegate(p *Program, dl *delegateRun, truth []byte) {
	if dl.err != "" {
		o.diverge("delegate", "error", "%s", dl.err)
		return
	}
	for fi, img := range dl.images {
		want := p.fileTruth(truth, fi)
		n := int64(len(want))
		if int64(len(img)) > n {
			n = int64(len(img))
		}
		for i := int64(0); i < n; i++ {
			var got, exp byte
			if i < int64(len(img)) {
				got = img[i]
			}
			if i < int64(len(want)) {
				exp = want[i]
			}
			if got != exp {
				o.diverge("delegate", "image", "file %d byte %d = %#x, truth %#x", fi, i, got, exp)
				break
			}
		}
	}
	clients := p.Clients()
	var reqSum int64
	for fi := 0; fi < p.Knobs.Files; fi++ {
		for cl := 0; cl < clients; cl++ {
			ws, rs := dl.w[fi][cl], dl.r[fi][cl]
			if wantN, wantBytes := countOps(p.WriteRounds, cl); ws.Writes != wantN || ws.WriteBytes != wantBytes {
				o.diverge("delegate", "stats", "file %d client %d counted %d writes/%d bytes, program has %d/%d",
					fi, cl, ws.Writes, ws.WriteBytes, wantN, wantBytes)
			}
			if wantN, wantBytes := countOps(p.ReadRounds, cl); rs.Reads != wantN || rs.ReadBytes != wantBytes {
				o.diverge("delegate", "stats", "file %d client %d counted %d reads/%d bytes, program has %d/%d",
					fi, cl, rs.Reads, rs.ReadBytes, wantN, wantBytes)
			}
			if p.Knobs.ServerRanks > 0 {
				if want := int64(len(p.WriteRounds)) + 1; ws.Flushes != want {
					o.diverge("delegate", "stats", "file %d client %d flushed %d epochs, want %d (rounds+close)",
						fi, cl, ws.Flushes, want)
				}
				reqSum += ws.WriteReqs
			} else {
				s := dl.passW[fi][cl]
				if s.EagerWrites+s.FlushResidue != s.FSWrites {
					o.diverge("delegate", "stats", "file %d rank %d pass-through ledger: EagerWrites %d + FlushResidue %d != FSWrites %d",
						fi, cl, s.EagerWrites, s.FlushResidue, s.FSWrites)
				}
			}
		}
	}
	if p.Knobs.ServerRanks == 0 {
		var fsSum int64
		for fi := range dl.passW {
			for _, s := range dl.passW[fi] {
				fsSum += s.FSWrites
			}
		}
		if fsSum != dl.fsWrites {
			o.diverge("delegate", "stats", "pass-through ranks report %d FSWrites, file system served %d",
				fsSum, dl.fsWrites)
		}
		return
	}
	if len(dl.servers) != p.Knobs.ServerRanks {
		o.diverge("delegate", "stats", "%d server reports, want %d", len(dl.servers), p.Knobs.ServerRanks)
		return
	}
	var staged, fsSum int64
	for _, s := range dl.servers {
		staged += s.StagedWrites
		fsSum += s.FSWrites
		// Every server closes one epoch per file per collective flush —
		// each write round's Flush plus Close's — even when it owns no
		// dirty domain blocks for that file.
		if want := int64(p.Knobs.Files) * int64(len(p.WriteRounds)+1); s.Epochs != want {
			o.diverge("delegate", "stats", "server %d closed %d epochs, want %d", s.Rank, s.Epochs, want)
		}
	}
	if staged != reqSum {
		o.diverge("delegate", "stats", "servers staged %d write records, clients sent %d", staged, reqSum)
	}
	if fsSum != dl.fsWrites {
		o.diverge("delegate", "stats", "servers report %d FSWrites, file system served %d", fsSum, dl.fsWrites)
	}
	o.checkDelegateRead(p, dl)
}

// checkDelegateRead applies the read-path conservation laws to the read
// phase's per-server counters (delegation only).
func (o *Outcome) checkDelegateRead(p *Program, dl *delegateRun) {
	k := p.Knobs
	if len(dl.rservers) != k.ServerRanks {
		o.diverge("delegate", "stats", "%d read-phase server reports, want %d", len(dl.rservers), k.ServerRanks)
		return
	}
	var pieceSum int64
	for fi := range dl.r {
		for _, rs := range dl.r[fi] {
			pieceSum += rs.ReadReqs
		}
	}
	var readReqs, colBlocks, fsReads int64
	for _, s := range dl.rservers {
		readReqs += s.ReadReqs
		colBlocks += s.CollectiveBlocks
		fsReads += s.FSReads
		if k.ServerCacheBlocks == 0 && s.CacheHits+s.CacheMisses+s.CacheEvictions != 0 {
			o.diverge("delegate", "stats", "server %d counted cache traffic (%d/%d/%d) with the cache disarmed",
				s.Rank, s.CacheHits, s.CacheMisses, s.CacheEvictions)
		}
		if k.ServerCacheBlocks > 0 {
			// Every served read request and every collective block is exactly
			// one hit or one miss while the cache is armed.
			if s.CacheHits+s.CacheMisses != s.ReadReqs+s.CollectiveBlocks {
				o.diverge("delegate", "stats", "server %d cache hits %d + misses %d != reads %d + collective blocks %d",
					s.Rank, s.CacheHits, s.CacheMisses, s.ReadReqs, s.CollectiveBlocks)
			}
			if s.CacheEvictions > s.CacheMisses {
				o.diverge("delegate", "stats", "server %d evicted %d blocks but filled only %d",
					s.Rank, s.CacheEvictions, s.CacheMisses)
			}
		}
		if k.CollectiveRead {
			// One intent epoch per file per collective point: each read
			// round's Fetch plus Close's, on every server — the delegated
			// mirror of tcio's TwoPhaseExchanges count.
			if want := int64(k.Files) * int64(len(p.ReadRounds)+1); s.ReadEpochs != want {
				o.diverge("delegate", "stats", "server %d closed %d read epochs, want %d (files x rounds+close)",
					s.Rank, s.ReadEpochs, want)
			}
			if s.ReadReqs != 0 {
				o.diverge("delegate", "stats", "server %d served %d inline reads in collective mode",
					s.Rank, s.ReadReqs)
			}
		} else if s.ReadEpochs != 0 || s.CollectiveBlocks != 0 {
			o.diverge("delegate", "stats", "server %d closed %d read epochs (%d blocks) with collective read off",
				s.Rank, s.ReadEpochs, s.CollectiveBlocks)
		}
	}
	if !k.CollectiveRead && readReqs != pieceSum {
		o.diverge("delegate", "stats", "servers served %d read requests, clients sent %d pieces", readReqs, pieceSum)
	}
	if fsReads != dl.fsReads {
		o.diverge("delegate", "stats", "servers report %d FSReads, file system served %d", fsReads, dl.fsReads)
	}
	if k.ServerCacheBlocks == 0 && !k.CollectiveRead && fsReads != pieceSum {
		// The disarmed read path keeps the per-request identity: one file
		// system read of exactly the piece's length per client piece.
		o.diverge("delegate", "stats", "disarmed read path issued %d fs reads for %d client pieces", fsReads, pieceSum)
	}
}
