package conformance

// Corpus persistence: shrunk repro programs are serialized to JSON files
// under testdata/corpus/ and replayed by TestCorpusReplay on every test
// run, so a divergence found once by the randomized sweep becomes a
// permanent regression test.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Save writes the program to dir as conform-<digest>.json and returns the
// path. Saving the same program twice is idempotent.
func Save(dir string, p *Program) (string, error) {
	blob, err := p.Marshal()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("conform-%s.json", p.Digest()))
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads one serialized program.
func Load(path string) (*Program, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// LoadDir reads every corpus case in dir, sorted by file name for a
// stable replay order. A missing directory is an empty corpus.
func LoadDir(dir string) (map[string]*Program, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make(map[string]*Program, len(names))
	for _, name := range names {
		p, err := Load(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out[name] = p
	}
	return out, nil
}
