// Package storage is the single file-system access path of the I/O
// libraries. TCIO's drain/populate/preload and OCIO's two-phase I/O phases
// used to hand-roll their own request loops — each with its own retry
// handling, trace emission, and virtual-time bookkeeping. A storage.Client
// folds all of that into one place:
//
//   - every request runs under the shared faults.Retry policy, with the
//     absorbed transient faults counted and traced once;
//   - completion times learned from the file system advance the caller's
//     virtual clock in one place;
//   - batches of extents can fan out across per-OST worker goroutines
//     (bounded by the Workers knob), so multi-stripe drains overlap across
//     object storage targets instead of issuing serially.
//
// Parallel issue is deterministic per rank: requests are grouped by the
// OST serving them, groups are dealt to workers in OST order, and each
// worker walks its groups serially, accumulating virtual time exactly as
// the serial path does. Two requests only overlap when they target
// different OSTs — the hardware parallelism being modelled. Fault decisions
// key on stable request identity (client, offset, length, attempt), so
// chaos runs replay identically at any worker count.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

// Clock is the caller's virtual clock. *mpi.Comm satisfies it; the storage
// layer deliberately depends only on this narrow view so it sits below the
// MPI runtime in the package layering.
type Clock interface {
	Now() simtime.Time
	AdvanceTo(t simtime.Time)
}

// Request is one contiguous extent transfer: fill Data from the file at
// Off (reads) or store Data at Off (writes). Tag is a short description
// carried into trace events and error messages ("seg=12").
type Request struct {
	Off  int64
	Data []byte
	Tag  string
}

// Result summarizes one ReadExtents/WriteExtents batch.
type Result struct {
	// Requests counts the file system requests issued.
	Requests int64
	// Retries counts the transient faults absorbed with backoff.
	Retries int64
	// Bytes counts the real bytes moved by successful requests.
	Bytes int64
}

// Backend is the storage interface the I/O libraries program against: batch
// reads and writes of extent lists with retry, tracing, and virtual-time
// charging handled below the call. op names the caller's operation for
// errors and retry traces ("drain", "populate"); kind classifies the
// per-request trace events.
type Backend interface {
	ReadExtents(op string, kind trace.Kind, reqs []Request) (Result, error)
	WriteExtents(op string, kind trace.Kind, reqs []Request) (Result, error)
	// Retries reports the cumulative transient faults this backend absorbed.
	Retries() int64
}

// Client is the pfs-backed Backend used by tcio and mpiio.
type Client struct {
	pf    *pfs.File
	node  int
	rank  int
	clock Clock

	retry   faults.RetryPolicy
	rec     *trace.Recorder
	workers int

	retries atomic.Int64
}

// NewClient builds a client issuing requests for the given rank on the
// given compute node, charging completion times to clock. The default
// configuration retries with faults.DefaultRetryPolicy, records no trace,
// and issues serially (one worker).
func NewClient(pf *pfs.File, node, rank int, clock Clock) *Client {
	return &Client{
		pf:    pf,
		node:  node,
		rank:  rank,
		clock: clock,
		retry: faults.DefaultRetryPolicy(),
	}
}

// SetRetryPolicy replaces the retry policy of subsequent requests.
func (c *Client) SetRetryPolicy(p faults.RetryPolicy) { c.retry = p }

// SetTrace attaches a trace recorder (nil disables tracing).
func (c *Client) SetTrace(rec *trace.Recorder) { c.rec = rec }

// SetWorkers bounds the per-OST fan-out of extent batches. Values below 2
// select the serial path, which preserves the exact request ordering and
// timing of the classic one-at-a-time loop.
func (c *Client) SetWorkers(n int) { c.workers = n }

// Workers reports the configured fan-out bound.
func (c *Client) Workers() int {
	if c.workers < 1 {
		return 1
	}
	return c.workers
}

// Retries reports the cumulative transient faults absorbed by this client.
func (c *Client) Retries() int64 { return c.retries.Load() }

// File exposes the underlying simulated file (verification helper).
func (c *Client) File() *pfs.File { return c.pf }

// ReadExtents fills every request's Data from the file.
func (c *Client) ReadExtents(op string, kind trace.Kind, reqs []Request) (Result, error) {
	return c.run(op, kind, reqs, false)
}

// WriteExtents stores every request's Data into the file.
func (c *Client) WriteExtents(op string, kind trace.Kind, reqs []Request) (Result, error) {
	return c.run(op, kind, reqs, true)
}

// ReadExtentsFrom issues the batch departing at start without touching the
// caller's clock, and returns the batch's completion time alongside the
// result. This is the detached-start path backing the overlap pipeline:
// tcio's write-behind and prefetch lanes charge transfers to a background
// timeline and synchronize with it only when the caller actually needs the
// outcome. The request set, ordering, and fault-roll identity are exactly
// those of ReadExtents; only whose clock pays is different.
func (c *Client) ReadExtentsFrom(op string, kind trace.Kind, reqs []Request, start simtime.Time) (Result, simtime.Time, error) {
	return c.runFrom(op, kind, reqs, false, start)
}

// WriteExtentsFrom is the detached-start variant of WriteExtents; see
// ReadExtentsFrom.
func (c *Client) WriteExtentsFrom(op string, kind trace.Kind, reqs []Request, start simtime.Time) (Result, simtime.Time, error) {
	return c.runFrom(op, kind, reqs, true, start)
}

// Truncate resets the backing file to empty as one retried, traced,
// virtual-time-charged control request — the journal-retirement path. op
// names the operation for errors and retry traces; kind classifies the
// trace event.
func (c *Client) Truncate(op string, kind trace.Kind) error {
	start := c.clock.Now()
	end, retries, err := c.pf.TruncateAtRetry(c.node, start, c.retry)
	c.clock.AdvanceTo(end)
	if retries > 0 {
		c.retries.Add(retries)
		c.emit(trace.KindRetry, start, end, 0, fmt.Sprintf("%s retries=%d", op, retries))
	}
	if err != nil {
		return fmt.Errorf("%s: %w", op, err)
	}
	c.emit(kind, start, end, 0, "truncate")
	return nil
}

// ReadAt is a single-request ReadExtents convenience.
func (c *Client) ReadAt(op string, off int64, dst []byte) error {
	_, err := c.ReadExtents(op, trace.KindFetch, []Request{{Off: off, Data: dst}})
	return err
}

// WriteAt is a single-request WriteExtents convenience.
func (c *Client) WriteAt(op string, off int64, data []byte) error {
	_, err := c.WriteExtents(op, trace.KindDrain, []Request{{Off: off, Data: data}})
	return err
}

func (c *Client) run(op string, kind trace.Kind, reqs []Request, write bool) (Result, error) {
	if len(reqs) == 0 {
		return Result{}, nil
	}
	res, end, err := c.runFrom(op, kind, reqs, write, c.clock.Now())
	c.clock.AdvanceTo(end)
	return res, err
}

// runFrom issues the batch from an explicit departure time and reports its
// makespan end instead of advancing any clock — the shared engine under
// both the synchronous entry points and the detached-start lanes.
func (c *Client) runFrom(op string, kind trace.Kind, reqs []Request, write bool, start simtime.Time) (Result, simtime.Time, error) {
	if len(reqs) == 0 {
		return Result{}, start, nil
	}
	if c.Workers() > 1 && len(reqs) > 1 {
		return c.runParallel(op, kind, reqs, write, start)
	}
	return c.runSerial(op, kind, reqs, write, start)
}

// issue performs one request departing at now and returns its completion
// time and absorbed retries. Writes identify as the node (extent locks are
// node-granular, like Lustre's); reads identify as the rank, so the file
// system's per-process readahead window sees only this rank's sequential
// history.
func (c *Client) issue(r Request, now simtime.Time, write bool) (simtime.Time, int64, error) {
	if write {
		return c.pf.WriteAtRetry(c.node, r.Off, r.Data, now, c.retry)
	}
	return c.pf.ReadAtRetry(c.rank, r.Off, r.Data, now, c.retry)
}

// emit records one trace event (no-op without a recorder).
func (c *Client) emit(kind trace.Kind, start, end simtime.Time, bytes int64, detail string) {
	if c.rec == nil {
		return
	}
	c.rec.Record(trace.Event{
		Rank:   c.rank,
		Start:  start,
		Dur:    end.Sub(start),
		Kind:   kind,
		Bytes:  bytes,
		Detail: detail,
	})
}

// finish folds one completed request into the result, tracing retries and
// the operation itself, and wrapping errors with the request's context.
func (c *Client) finish(op string, kind trace.Kind, r Request, start, end simtime.Time,
	retries int64, err error, res *Result) error {
	if retries > 0 {
		res.Retries += retries
		c.retries.Add(retries)
		c.emit(trace.KindRetry, start, end, 0, fmt.Sprintf("%s %s retries=%d", op, r.Tag, retries))
	}
	if err != nil {
		if r.Tag != "" {
			return fmt.Errorf("%s %s: %w", op, r.Tag, err)
		}
		return fmt.Errorf("%s %d bytes at %d: %w", op, len(r.Data), r.Off, err)
	}
	res.Requests++
	res.Bytes += int64(len(r.Data))
	c.emit(kind, start, end, int64(len(r.Data)), r.Tag)
	return nil
}

// runSerial issues the batch one request at a time, each departing when the
// previous completed — the classic loop, kept bit-identical for Workers <= 1.
func (c *Client) runSerial(op string, kind trace.Kind, reqs []Request, write bool, start simtime.Time) (Result, simtime.Time, error) {
	if mutate.Enabled(mutate.StorageDropLastRequest) && len(reqs) > 1 {
		reqs = reqs[:len(reqs)-1]
	}
	var res Result
	now := start
	for _, r := range reqs {
		depart := now
		end, retries, err := c.issue(r, depart, write)
		now = end
		if ferr := c.finish(op, kind, r, depart, end, retries, err, &res); ferr != nil {
			return res, now, ferr
		}
	}
	return res, now, nil
}

// runParallel fans the batch out across per-OST workers. All workers start
// at the batch's departure instant; each walks its OST groups serially,
// accumulating virtual time within the group exactly as the serial path
// does, so requests only overlap across distinct OSTs. The reported end is
// the latest completion — the fan-out's makespan.
func (c *Client) runParallel(op string, kind trace.Kind, reqs []Request, write bool, start simtime.Time) (Result, simtime.Time, error) {
	// Group requests by serving OST, preserving request order per group and
	// ordering groups by OST index so the worker assignment is deterministic.
	groupOf := make(map[int]int)
	var groups [][]Request
	var osts []int
	for _, r := range reqs {
		ost := c.pf.OSTOf(r.Off)
		gi, ok := groupOf[ost]
		if !ok {
			gi = len(groups)
			groupOf[ost] = gi
			groups = append(groups, nil)
			osts = append(osts, ost)
		}
		groups[gi] = append(groups[gi], r)
	}
	order := make([]int, 0, len(groups))
	for gi := range groups {
		order = append(order, gi)
	}
	for i := 1; i < len(order); i++ { // insertion sort by OST index (tiny n)
		for j := i; j > 0 && osts[order[j-1]] > osts[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}

	workers := c.Workers()
	if workers > len(order) {
		workers = len(order)
	}
	type lane struct {
		res Result
		end simtime.Time
		err error
	}
	lanes := make([]lane, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ln := &lanes[w]
			ln.end = start
			now := start
			for oi := w; oi < len(order); oi += workers {
				for _, r := range groups[order[oi]] {
					depart := now
					end, retries, err := c.issue(r, depart, write)
					if end > ln.end {
						ln.end = end
					}
					now = end
					if ferr := c.finish(op, kind, r, depart, end, retries, err, &ln.res); ferr != nil {
						ln.err = ferr
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var res Result
	var firstErr error
	maxEnd := start
	for _, ln := range lanes {
		res.Requests += ln.res.Requests
		res.Retries += ln.res.Retries
		res.Bytes += ln.res.Bytes
		if ln.end > maxEnd {
			maxEnd = ln.end
		}
		if ln.err != nil && firstErr == nil {
			firstErr = ln.err
		}
	}
	return res, maxEnd, firstErr
}
