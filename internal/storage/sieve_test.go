package storage

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/trace"
)

// sievedFile materializes a file of pseudorandom bytes and returns the
// file system plus a reference image.
func sievedFile(t *testing.T, inj *faults.Injector, size int64) (*pfs.FileSystem, []byte) {
	t.Helper()
	fs := multiOSTFS(inj)
	img := make([]byte, size)
	rng := rand.New(rand.NewSource(97))
	for i := range img {
		img[i] = byte(rng.Intn(256))
	}
	clock := &testClock{}
	c := NewClient(fs.Open("f"), 0, 0, clock)
	if _, err := c.WriteExtents("seed", trace.KindDrain, []Request{{Off: 0, Data: img}}); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	return fs, img
}

// TestSievedReadMatchesPerRun: for random hole-y request lists and
// budgets, the sieved read delivers exactly the bytes a plain per-run
// ReadExtents would, and the waste accounting balances against the cover
// traffic.
func TestSievedReadMatchesPerRun(t *testing.T) {
	const size = 1 << 14
	fs, img := sievedFile(t, nil, size)
	rng := rand.New(rand.NewSource(98))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		reqs := make([]Request, n)
		var want int64
		for i := range reqs {
			off := rng.Int63n(size)
			l := rng.Int63n(256)
			if off+l > size {
				l = size - off
			}
			reqs[i] = Request{Off: off, Data: make([]byte, l)}
			want += l
		}
		budget := []int64{0, 1, 128, 1024, size}[rng.Intn(5)]
		clock := &testClock{}
		c := NewClient(fs.Open("f"), 0, 0, clock)
		res, err := c.ReadExtentsSieved("sieve", reqs, budget)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, r := range reqs {
			if !bytes.Equal(r.Data, img[r.Off:r.Off+int64(len(r.Data))]) {
				t.Fatalf("trial %d budget %d: request %d bytes differ", trial, budget, i)
			}
		}
		if res.Waste < 0 || res.Bytes < res.Waste {
			t.Fatalf("trial %d: waste %d of %d cover bytes", trial, res.Waste, res.Bytes)
		}
		if res.Requests > int64(n) {
			t.Fatalf("trial %d: %d covers for %d runs", trial, res.Requests, n)
		}
	}
}

// TestSievedReadReducesRequests: runs separated by small holes collapse
// into one covering request under a budget spanning them, and degenerate
// to per-run list I/O (zero waste) under budget 0.
func TestSievedReadReducesRequests(t *testing.T) {
	fs, img := sievedFile(t, nil, 1<<12)
	mkReqs := func() []Request {
		reqs := make([]Request, 8)
		for i := range reqs {
			reqs[i] = Request{Off: int64(i) * 64, Data: make([]byte, 32)} // 32B holes between runs
		}
		return reqs
	}
	clock := &testClock{}
	c := NewClient(fs.Open("f"), 0, 0, clock)

	reqs := mkReqs()
	res, err := c.ReadExtentsSieved("sieve", reqs, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 {
		t.Fatalf("spanning budget: %d covers, want 1", res.Requests)
	}
	// Cover [0, 7*64+32) = 480 bytes, delivering 8*32 = 256.
	if res.Waste != 480-256 {
		t.Fatalf("spanning budget: waste %d, want %d", res.Waste, 480-256)
	}
	for i, r := range reqs {
		if !bytes.Equal(r.Data, img[r.Off:r.Off+32]) {
			t.Fatalf("spanning budget: request %d bytes differ", i)
		}
	}

	reqs = mkReqs()
	res, err = c.ReadExtentsSieved("sieve", reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 8 || res.Waste != 0 {
		t.Fatalf("list I/O: %d covers waste %d, want 8 covers waste 0", res.Requests, res.Waste)
	}
}

// TestSievedReadChaosDeterministic: under fault injection, two identical
// sieved batches see identical retry counts — the cover requests are the
// fault-roll identity and the plan is deterministic.
func TestSievedReadChaosDeterministic(t *testing.T) {
	run := func() (Result, int64) {
		inj := faults.New(11)
		inj.Set(faults.SiteOSTRead, faults.Rule{Prob: 0.2})
		fs, _ := sievedFile(t, inj, 1<<12)
		clock := &testClock{}
		c := NewClient(fs.Open("f"), 0, 3, clock)
		reqs := make([]Request, 6)
		for i := range reqs {
			reqs[i] = Request{Off: int64(i) * 300, Data: make([]byte, 100)}
		}
		res, err := c.ReadExtentsSieved("sieve", reqs, 512)
		if err != nil {
			t.Fatal(err)
		}
		return res.Result, res.Retries
	}
	r1, ret1 := run()
	r2, ret2 := run()
	if r1 != r2 || ret1 != ret2 {
		t.Fatalf("sieved chaos runs diverge: %+v/%d vs %+v/%d", r1, ret1, r2, ret2)
	}
}
