package storage

// The data-sieving read path (Thakur/Gropp/Lusk, list I/O + data sieving).
// ReadExtentsSieved accepts the same batched noncontiguous request list as
// ReadExtents but plans it through extent.SievePlan first: nearby runs are
// served by one covering read of at most budget bytes, staged in a pooled
// buffer, and the wanted runs are scattered out of the staging afterwards.
// The cover requests — not the caller's runs — are what the engine issues,
// so retry handling, trace emission (trace.KindSieve), virtual-time
// charging, and the per-OST worker fan-out all apply to them unchanged,
// and the fault-roll identity (client, offset, length, attempt) is a
// deterministic function of the planned covers. A budget too small to
// join any two runs degenerates to list I/O: every run is its own cover,
// passed through with the caller's own buffer and zero waste.

import (
	"fmt"
	"math/bits"
	"sync"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/trace"
)

// SieveResult extends Result with the sieve's own accounting.
type SieveResult struct {
	Result
	// Waste counts cover bytes read from the file system but not delivered
	// to any request — the holes the sieve paid for. Result.Bytes counts
	// the full cover traffic, so delivered bytes are Bytes - Waste.
	Waste int64
}

// ReadExtentsSieved fills every request's Data from the file through
// data-sieving covers of at most budget bytes. Requests may be unsorted
// and may overlap; zero-length requests are ignored. With budget <= 0 (or
// any budget below the smallest joinable pair) the plan is pure list I/O.
func (c *Client) ReadExtentsSieved(op string, reqs []Request, budget int64) (SieveResult, error) {
	runs := make([]extent.Extent, len(reqs))
	for i, r := range reqs {
		runs[i] = extent.Extent{Off: r.Off, Len: int64(len(r.Data))}
	}
	groups := extent.SievePlan(runs, budget)

	var out SieveResult
	covers := make([]Request, 0, len(groups))
	staged := make([]int, 0, len(groups)) // indices into groups needing a scatter
	var stages []([]byte)
	for gi, g := range groups {
		if len(g.Index) == 1 && g.Cover.Len == runs[g.Index[0]].Len {
			// The cover is exactly one caller run: read straight into the
			// caller's buffer, nothing to scatter, nothing wasted.
			covers = append(covers, reqs[g.Index[0]])
			continue
		}
		buf := getStage(int(g.Cover.Len))
		covers = append(covers, Request{
			Off:  g.Cover.Off,
			Data: buf,
			Tag:  fmt.Sprintf("sieve cover=%d+%d runs=%d", g.Cover.Off, g.Cover.Len, len(g.Index)),
		})
		staged = append(staged, gi)
		stages = append(stages, buf)
		out.Waste += g.Waste(runs)
	}

	res, err := c.run(op, trace.KindSieve, covers, false)
	out.Result = res
	if err != nil {
		for _, buf := range stages {
			recycleStage(buf)
		}
		out.Waste = 0
		return out, err
	}
	for si, gi := range staged {
		g := groups[gi]
		stage := stages[si]
		for _, i := range g.Index {
			src := runs[i].Off - g.Cover.Off
			if mutate.Enabled(mutate.StorageSieveScatterOffby) && runs[i].End() < g.Cover.End() {
				src++
			}
			copy(reqs[i].Data, stage[src:])
		}
		recycleStage(stage)
	}
	return out, nil
}

// Cover staging buffers are transient per-call scratch — the same
// size-classed free-list idiom as the MPI runtime's message staging
// (internal/mpi/bufpool.go). Plain memory, never charged to the
// simulated-memory accountant, so sieving cannot shift allocation fault
// streams.
const (
	minStageShift = 6  // 64 B
	maxStageShift = 26 // 64 MiB; larger covers fall back to the heap
)

var stagePools [maxStageShift - minStageShift + 1]sync.Pool

// getStage returns a length-n staging buffer from the pool. Every byte is
// overwritten by the covering read before scatter, so recycled contents
// never leak.
func getStage(n int) []byte {
	if n <= 0 {
		return nil
	}
	shift := bits.Len(uint(n - 1))
	if shift < minStageShift {
		shift = minStageShift
	}
	if shift > maxStageShift {
		return make([]byte, n)
	}
	if v := stagePools[shift-minStageShift].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, 1<<shift)
}

// recycleStage returns a staging buffer to its size-class pool; only
// buffers getStage handed out (exact power-of-two capacity) are accepted.
func recycleStage(b []byte) {
	c := cap(b)
	if c < 1<<minStageShift || c > 1<<maxStageShift || c&(c-1) != 0 {
		return
	}
	b = b[:c]
	stagePools[bits.TrailingZeros(uint(c))-minStageShift].Put(&b)
}
