package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/trace"
)

// testClock is a plain rank clock for driving a Client outside the MPI
// runtime.
type testClock struct{ now simtime.Time }

func (c *testClock) Now() simtime.Time { return c.now }
func (c *testClock) AdvanceTo(t simtime.Time) {
	if t > c.now {
		c.now = t
	}
}

// multiOSTFS builds a file system whose files stripe over several OSTs so
// the parallel path has real fan-out to exploit.
func multiOSTFS(inj *faults.Injector) *pfs.FileSystem {
	cfg := pfs.DefaultConfig()
	cfg.OSTCount = 8
	cfg.StripeCount = 8
	cfg.Faults = inj
	return pfs.New(cfg)
}

// stripedRequests builds one request per stripe across nStripes stripes,
// each tagged and filled with a distinct pattern.
func stripedRequests(stripeSize int64, nStripes int) []Request {
	reqs := make([]Request, nStripes)
	for i := range reqs {
		data := bytes.Repeat([]byte{byte(i + 1)}, 1024)
		reqs[i] = Request{Off: int64(i) * stripeSize, Data: data, Tag: fmt.Sprintf("stripe=%d", i)}
	}
	return reqs
}

func TestSerialAndParallelWriteSameBytes(t *testing.T) {
	cfgStripe := pfs.DefaultConfig().StripeSize
	for _, workers := range []int{1, 4} {
		fs := multiOSTFS(nil)
		clock := &testClock{}
		c := NewClient(fs.Open("f"), 0, 0, clock)
		c.SetWorkers(workers)
		reqs := stripedRequests(cfgStripe, 8)
		res, err := c.WriteExtents("write", trace.KindDrain, reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Requests != 8 || res.Bytes != 8*1024 {
			t.Fatalf("workers=%d: result %+v", workers, res)
		}
		snap := fs.Open("f").Snapshot()
		for _, r := range reqs {
			if !bytes.Equal(snap[r.Off:r.Off+int64(len(r.Data))], r.Data) {
				t.Fatalf("workers=%d: %s not written", workers, r.Tag)
			}
		}
	}
}

// TestParallelMakespanBeatsSerial pins the point of the fan-out: with the
// requests spread over distinct OSTs, issuing them from several workers
// finishes in less virtual time than the serial chain.
func TestParallelMakespanBeatsSerial(t *testing.T) {
	stripe := pfs.DefaultConfig().StripeSize
	elapsed := func(workers int) simtime.Duration {
		fs := multiOSTFS(nil)
		clock := &testClock{}
		c := NewClient(fs.Open("f"), 0, 0, clock)
		c.SetWorkers(workers)
		if _, err := c.WriteExtents("write", trace.KindDrain, stripedRequests(stripe, 8)); err != nil {
			t.Fatal(err)
		}
		return clock.now.Sub(0)
	}
	serial, parallel := elapsed(1), elapsed(4)
	if parallel >= serial {
		t.Fatalf("parallel makespan %v not below serial %v", parallel, serial)
	}
}

// TestRetriesDeterministicAcrossWorkerCounts checks that the absorbed fault
// count depends only on the request identities, not on the fan-out.
func TestRetriesDeterministicAcrossWorkerCounts(t *testing.T) {
	stripe := pfs.DefaultConfig().StripeSize
	run := func(workers int) int64 {
		inj := faults.New(42).Set(faults.SiteOSTWrite, faults.Rule{Prob: 0.5})
		fs := multiOSTFS(inj)
		clock := &testClock{}
		c := NewClient(fs.Open("f"), 0, 0, clock)
		c.SetWorkers(workers)
		if _, err := c.WriteExtents("write", trace.KindDrain, stripedRequests(stripe, 8)); err != nil {
			t.Fatal(err)
		}
		return c.Retries()
	}
	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != base {
			t.Fatalf("workers=%d: %d retries, serial absorbed %d", workers, got, base)
		}
	}
	if base == 0 {
		t.Fatal("fault rate 0.5 absorbed no faults; injection broken")
	}
}

func TestExhaustionSurfacesWrappedError(t *testing.T) {
	inj := faults.New(7).Set(faults.SiteOSTWrite, faults.Rule{Prob: 1})
	fs := multiOSTFS(inj)
	clock := &testClock{}
	c := NewClient(fs.Open("f"), 0, 0, clock)
	c.SetRetryPolicy(faults.NoRetry())
	_, err := c.WriteExtents("write", trace.KindDrain,
		[]Request{{Off: 0, Data: []byte{1}, Tag: "doomed"}})
	if !errors.Is(err, faults.ErrExhaustedRetries) {
		t.Fatalf("error %v does not wrap ErrExhaustedRetries", err)
	}
}

func TestReadExtentsRoundTrip(t *testing.T) {
	stripe := pfs.DefaultConfig().StripeSize
	fs := multiOSTFS(nil)
	clock := &testClock{}
	c := NewClient(fs.Open("f"), 0, 0, clock)
	want := stripedRequests(stripe, 4)
	if _, err := c.WriteExtents("write", trace.KindDrain, want); err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(4)
	got := make([]Request, len(want))
	for i, r := range want {
		got[i] = Request{Off: r.Off, Data: make([]byte, len(r.Data)), Tag: r.Tag}
	}
	res, err := c.ReadExtents("read", trace.KindFetch, got)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != int64(len(want)) {
		t.Fatalf("read result %+v", res)
	}
	for i := range want {
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("request %d read back wrong bytes", i)
		}
	}
}
