package mpiio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mpi"
)

// This file implements OCIO: ROMIO's generalized two-phase collective I/O
// (paper §III.A). A collective call proceeds as:
//
//  1. Every rank flattens its request through its file view and the ranks
//     agree (allreduce) on the aggregate file domain [lo, hi).
//  2. The domain is split into equal, disjoint, contiguous file domains,
//     one per aggregator. As in the paper's experiments, every process is
//     an aggregator (collective buffering's aggregator sub-selection is
//     disabled).
//  3. Data exchange phase: each rank ships the pieces of its request to
//     the owning aggregators with nonblocking all-to-all communication —
//     all receives posted, then all sends, then wait. This is the traffic
//     burst whose congestion TCIO's paced one-sided transfers avoid.
//  4. I/O phase: each aggregator performs one large contiguous file system
//     access for its whole domain. For writes the aggregator buffer holds
//     the entire domain, which is why OCIO's memory footprint is roughly
//     twice the data size (the paper's Fig. 6 discussion: at the 48 GB
//     dataset each process needs 1.5 GB of I/O buffers and fails).

// runsMessage encodes a set of absolute file runs plus (for writes) their
// payload bytes, for the exchange phase.
func encodeRuns(runs []datatype.Segment, payload []byte) []byte {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(runs)))
	buf.Write(hdr[:4])
	var pair [16]byte
	for _, r := range runs {
		binary.LittleEndian.PutUint64(pair[:8], uint64(r.Off))
		binary.LittleEndian.PutUint64(pair[8:], uint64(r.Len))
		buf.Write(pair[:])
	}
	buf.Write(payload)
	return buf.Bytes()
}

func decodeRuns(msg []byte) ([]datatype.Segment, []byte, error) {
	if len(msg) < 4 {
		return nil, nil, fmt.Errorf("mpiio: truncated exchange message (%d bytes)", len(msg))
	}
	n := binary.LittleEndian.Uint32(msg[:4])
	need := 4 + int(n)*16
	if len(msg) < need {
		return nil, nil, fmt.Errorf("mpiio: exchange message needs %d bytes, has %d", need, len(msg))
	}
	runs := make([]datatype.Segment, n)
	for i := range runs {
		off := 4 + i*16
		runs[i].Off = int64(binary.LittleEndian.Uint64(msg[off : off+8]))
		runs[i].Len = int64(binary.LittleEndian.Uint64(msg[off+8 : off+16]))
	}
	return runs, msg[need:], nil
}

// aggregateDomain computes this call's [lo,hi) across all ranks.
func (f *File) aggregateDomain(runs []datatype.Segment) (int64, int64, error) {
	myLo, myHi := int64(math.MaxInt64), int64(0)
	if len(runs) > 0 {
		myLo = runs[0].Off
		myHi = runs[len(runs)-1].Off + runs[len(runs)-1].Len
	}
	lo, err := f.c.AllreduceInt64(mpi.OpMin, myLo)
	if err != nil {
		return 0, 0, err
	}
	hi, err := f.c.AllreduceInt64(mpi.OpMax, myHi)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// aggSet is the aggregator layout of one collective call: the equal-size
// partition of the aggregate domain into file domains (extent.Partition)
// and the ranks that own them. With SetAggregators(0) — the paper's setup —
// every rank is an aggregator; otherwise the domains are dealt to a strided
// subset of ranks, as ROMIO's collective buffering does.
type aggSet struct {
	part   extent.Partition
	owners []int
	mine   int // index of this rank's domain, -1 when it owns none
}

func (f *File) buildAggSet(lo, hi int64) aggSet {
	n := f.aggregators
	if n <= 0 || n > f.c.Size() {
		n = f.c.Size()
	}
	as := aggSet{part: extent.NewPartition(lo, hi, n), owners: make([]int, n), mine: -1}
	stride := f.c.Size() / n
	if stride < 1 {
		stride = 1
	}
	for k := 0; k < n; k++ {
		as.owners[k] = k * stride
		if as.owners[k] == f.c.Rank() {
			as.mine = k
		}
	}
	return as
}

// mineDomain returns this rank's file domain, or an empty extent.
func (as aggSet) mineDomain() extent.Extent {
	if as.mine < 0 {
		return extent.Extent{}
	}
	return as.part.Domain(as.mine)
}

// WriteAll performs a collective write of data through the view at the
// current independent file pointer (MPI_File_write_all), advancing it.
func (f *File) WriteAll(data []byte) error {
	runs, err := f.flatten(f.pos, int64(len(data)))
	if err != nil {
		return err
	}
	f.pos += int64(len(data))

	lo, hi, err := f.aggregateDomain(runs)
	if err != nil {
		return err
	}
	if hi <= lo {
		return f.c.Barrier()
	}
	as := f.buildAggSet(lo, hi)
	mine := as.mineDomain()

	// Build the exchange messages: this rank's pieces and their payload
	// bytes for every aggregator, in one pass over the runs so run order
	// and data order stay aligned.
	perAgg := make([][]datatype.Segment, as.part.N)
	payloadFor := make([][]byte, as.part.N)
	consumed := int64(0)
	for _, r := range runs {
		for r.Len > 0 {
			k, end := as.part.Clip(r.Off, r.End())
			n := end - r.Off
			perAgg[k] = append(perAgg[k], datatype.Segment{Off: r.Off, Len: n})
			payloadFor[k] = append(payloadFor[k], data[consumed:consumed+n]...)
			consumed += n
			r.Off += n
			r.Len -= n
		}
	}
	send := make([][]byte, f.c.Size())
	nRuns := 0
	for k := 0; k < as.part.N; k++ {
		send[as.owners[k]] = encodeRuns(perAgg[k], payloadFor[k])
		nRuns += len(perAgg[k])
	}
	f.chargeCPU(runCPU, nRuns) // origin-side pack + descriptor encode

	// Data exchange phase: the nonblocking all-to-all burst.
	recv, err := f.c.Alltoallv(send)
	if err != nil {
		return err
	}

	// I/O phase: assemble the domain buffer and issue one large write.
	if mine.Len > 0 {
		buf, err := f.c.Malloc(mine.Len)
		if err != nil {
			return fmt.Errorf("mpiio: aggregator buffer of %d bytes: %w", mine.Len, err)
		}
		defer f.c.Free(buf)

		// Decode all incoming pieces first to decide whether the domain is
		// fully covered; holes force a read-modify-write preread.
		type piece struct {
			runs    []datatype.Segment
			payload []byte
		}
		pieces := make([]piece, 0, len(recv))
		covered := make([]datatype.Segment, 0, 64)
		for _, msg := range recv {
			if len(msg) == 0 {
				continue
			}
			rs, payload, err := decodeRuns(msg)
			if err != nil {
				return err
			}
			pieces = append(pieces, piece{runs: rs, payload: payload})
			covered = append(covered, rs...)
		}
		if !extent.Covers(covered, mine.Off, mine.End()) {
			if err := f.readRetry(mine.Off, buf); err != nil {
				return err
			}
		}
		scattered := 0
		for _, p := range pieces {
			at := int64(0)
			for _, r := range p.runs {
				copy(buf[r.Off-mine.Off:r.Off-mine.Off+r.Len], p.payload[at:at+r.Len])
				at += r.Len
			}
			scattered += len(p.runs)
		}
		f.chargeCPU(runCPU, scattered) // aggregator-side decode + scatter
		if err := f.writeRetry(mine.Off, buf); err != nil {
			return err
		}
	}
	return f.c.Barrier()
}

// ReadAll performs a collective read of n visible bytes through the view at
// the current pointer (MPI_File_read_all), advancing it.
func (f *File) ReadAll(n int64) ([]byte, error) {
	runs, err := f.flatten(f.pos, n)
	if err != nil {
		return nil, err
	}
	f.pos += n

	lo, hi, err := f.aggregateDomain(runs)
	if err != nil {
		return nil, err
	}
	if hi <= lo {
		if err := f.c.Barrier(); err != nil {
			return nil, err
		}
		return make([]byte, n), nil
	}
	as := f.buildAggSet(lo, hi)
	mine := as.mineDomain()

	// Exchange phase 1 (ROMIO's ADIOI_Calc_others_req): every rank tells
	// each aggregator which runs it needs — an all-to-all burst of request
	// lists issued by all ranks at the same instant.
	perAgg := as.part.Split(runs)
	req := make([][]byte, f.c.Size())
	nRuns := 0
	for k := 0; k < as.part.N; k++ {
		req[as.owners[k]] = encodeRuns(perAgg[k], nil)
		nRuns += len(perAgg[k])
	}
	f.chargeCPU(runCPU, nRuns) // origin-side request encode
	incoming, err := f.c.Alltoallv(req)
	if err != nil {
		return nil, err
	}

	// I/O phase: each aggregator reads its whole domain.
	var buf []byte
	if mine.Len > 0 {
		buf, err = f.c.Malloc(mine.Len)
		if err != nil {
			return nil, fmt.Errorf("mpiio: aggregator buffer of %d bytes: %w", mine.Len, err)
		}
		defer f.c.Free(buf)
		if err := f.readRetry(mine.Off, buf); err != nil {
			return nil, err
		}
	}

	// Exchange phase 2: aggregators answer with the requested bytes.
	replies := make([][]byte, f.c.Size())
	gathered := 0
	for src, msg := range incoming {
		if len(msg) == 0 {
			continue // this rank aggregates nothing, or src requested nothing
		}
		rs, _, err := decodeRuns(msg)
		if err != nil {
			return nil, err
		}
		var payload []byte
		for _, r := range rs {
			payload = append(payload, buf[r.Off-mine.Off:r.Off-mine.Off+r.Len]...)
		}
		replies[src] = payload
		gathered += len(rs)
	}
	f.chargeCPU(runCPU, gathered) // aggregator-side decode + gather
	answers, err := f.c.Alltoallv(replies)
	if err != nil {
		return nil, err
	}

	// Assemble this rank's data in run order from the per-aggregator
	// answer streams.
	out := make([]byte, n)
	cursor := make([]int64, as.part.N)
	filled := int64(0)
	assembled := 0
	for _, r := range runs {
		for r.Len > 0 {
			k, end := as.part.Clip(r.Off, r.End())
			m := end - r.Off
			copy(out[filled:filled+m], answers[as.owners[k]][cursor[k]:cursor[k]+m])
			cursor[k] += m
			filled += m
			r.Off += m
			r.Len -= m
			assembled++
		}
	}
	f.chargeCPU(runCPU, assembled) // origin-side reply assembly
	if err := f.c.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}
