package mpiio

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
)

// Tests of the optional ROMIO features: aggregator sub-selection
// (collective buffering) and data sieving.

func TestSetAggregatorsValidation(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, "aggval")
		if err != nil {
			return err
		}
		if err := f.SetAggregators(-1); err == nil {
			return fmt.Errorf("negative aggregators accepted")
		}
		if err := f.SetAggregators(3); err == nil {
			return fmt.Errorf("more aggregators than ranks accepted")
		}
		if err := f.SetAggregators(1); err != nil {
			return err
		}
		return nil
	})
}

func TestCollectiveWriteWithFewerAggregators(t *testing.T) {
	// The same interleaved write with 2-of-8 aggregators must produce the
	// identical file, with fewer distinct FS clients issuing writes.
	const procs, pairs = 8, 16
	for _, aggs := range []int{0, 2} {
		var snapshot []byte
		var fsWrites int64
		run(t, procs, func(c *mpi.Comm) error {
			name := fmt.Sprintf("agg%d", aggs)
			f, err := Open(c, name)
			if err != nil {
				return err
			}
			if err := f.SetAggregators(aggs); err != nil {
				return err
			}
			if err := paperView(f, c.Rank(), procs, pairs); err != nil {
				return err
			}
			buf := make([]byte, pairs*12)
			for i := 0; i < pairs; i++ {
				buf[i*12] = byte(c.Rank() + 1)
			}
			if err := f.WriteAll(buf); err != nil {
				return err
			}
			if c.Rank() == 0 {
				snapshot = f.PFS().Snapshot()
				fsWrites = c.FS().Stats().Writes
			}
			return nil
		})
		if aggs == 0 {
			if fsWrites != procs {
				t.Fatalf("all-aggregator write used %d FS writes, want %d", fsWrites, procs)
			}
		} else if fsWrites != int64(aggs) {
			t.Fatalf("%d-aggregator write used %d FS writes", aggs, fsWrites)
		}
		want := make([]byte, procs*pairs*12)
		for p := 0; p < procs; p++ {
			for i := 0; i < pairs; i++ {
				want[(i*procs+p)*12] = byte(p + 1)
			}
		}
		if !bytes.Equal(snapshot, want) {
			t.Fatalf("aggs=%d: wrong file contents", aggs)
		}
	}
}

func TestCollectiveReadWithFewerAggregators(t *testing.T) {
	const procs, pairs = 8, 8
	run(t, procs, func(c *mpi.Comm) error {
		f, err := Open(c, "aggread")
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := f.WriteAt(0, paperReference(procs, pairs)); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := f.SetAggregators(2); err != nil {
			return err
		}
		if err := paperView(f, c.Rank(), procs, pairs); err != nil {
			return err
		}
		got, err := f.ReadAll(int64(pairs * 12))
		if err != nil {
			return err
		}
		for i := 0; i < pairs; i++ {
			iv := int(uint32le(got[i*12:]))
			if iv != c.Rank()*1000+i {
				return fmt.Errorf("rank %d pair %d = %d", c.Rank(), i, iv)
			}
		}
		return nil
	})
}

func uint32le(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func TestDataSievingSameBytesFewerRequests(t *testing.T) {
	const blocks = 32
	results := map[bool]struct {
		reads int64
		data  []byte
	}{}
	for _, sieve := range []bool{false, true} {
		var reads int64
		var data []byte
		run(t, 1, func(c *mpi.Comm) error {
			name := fmt.Sprintf("sieve%v", sieve)
			f, err := Open(c, name)
			if err != nil {
				return err
			}
			// Lay down a strided pattern: 4 data bytes every 16.
			content := make([]byte, blocks*16)
			for i := range content {
				content[i] = byte(i)
			}
			if err := f.WriteAt(0, content); err != nil {
				return err
			}
			c.FS().Reset()
			// View selecting the 4-byte blocks.
			vt, err := datatype.Vector(blocks, 1, 4, datatype.Int)
			if err != nil {
				return err
			}
			if err := f.SetView(0, datatype.Int, vt); err != nil {
				return err
			}
			f.SetSieving(sieve)
			got, err := f.ReadAt(0, blocks*4)
			if err != nil {
				return err
			}
			reads = c.FS().Stats().Reads
			data = got
			return nil
		})
		results[sieve] = struct {
			reads int64
			data  []byte
		}{reads, data}
	}
	if !bytes.Equal(results[true].data, results[false].data) {
		t.Fatal("sieving changed the data read")
	}
	if results[true].reads != 1 {
		t.Fatalf("sieving used %d reads, want 1", results[true].reads)
	}
	if results[false].reads != blocks {
		t.Fatalf("direct path used %d reads, want %d", results[false].reads, blocks)
	}
}

func TestSievingSingleRunUnchanged(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "sieve1")
		if err != nil {
			return err
		}
		if err := f.WriteAt(0, []byte{1, 2, 3, 4}); err != nil {
			return err
		}
		f.SetSieving(true)
		got, err := f.ReadAt(0, 4)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
}
