package mpiio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mpi"
)

func run(t *testing.T, procs int, fn func(*mpi.Comm) error) mpi.Report {
	t.Helper()
	rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar()}, fn)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestIndependentWriteReadRoundTrip(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, "indep")
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := f.WriteAt(10, []byte("hello")); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := f.ReadAt(10, 5)
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("read %q", got)
		}
		return nil
	})
}

func TestWriteAdvancesPointer(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "ptr")
		if err != nil {
			return err
		}
		if err := f.Write([]byte("ab")); err != nil {
			return err
		}
		if err := f.Write([]byte("cd")); err != nil {
			return err
		}
		got, err := f.ReadAt(0, 4)
		if err != nil {
			return err
		}
		if string(got) != "abcd" {
			return fmt.Errorf("file = %q", got)
		}
		if err := f.SeekTo(1); err != nil {
			return err
		}
		r, err := f.Read(2)
		if err != nil {
			return err
		}
		if string(r) != "bc" {
			return fmt.Errorf("Read after Seek = %q", r)
		}
		return nil
	})
}

func TestSetViewValidation(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "v")
		if err != nil {
			return err
		}
		if err := f.SetView(-1, datatype.Byte, datatype.Byte); err == nil {
			return errors.New("negative disp accepted")
		}
		v, _ := datatype.Vector(0, 1, 1, datatype.Int) // size 0
		if err := f.SetView(0, datatype.Byte, v); err == nil {
			return errors.New("empty filetype accepted")
		}
		// filetype not a multiple of etype
		if err := f.SetView(0, datatype.Int, datatype.Short); err == nil {
			return errors.New("mismatched etype accepted")
		}
		if err := f.SeekTo(-1); err == nil {
			return errors.New("negative seek accepted")
		}
		return nil
	})
}

func TestFlattenThroughVectorView(t *testing.T) {
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, "flat")
		if err != nil {
			return err
		}
		// filetype: 4-byte block every 12 bytes.
		ft, _ := datatype.Vector(3, 1, 3, datatype.Int)
		rt, _ := datatype.Resized(ft, 36)
		if err := f.SetView(100, datatype.Int, rt); err != nil {
			return err
		}
		runs, err := f.flatten(2, 12)
		if err != nil {
			return err
		}
		want := []datatype.Segment{{Off: 102, Len: 2}, {Off: 112, Len: 4}, {Off: 124, Len: 4}, {Off: 136, Len: 2}}
		if !reflect.DeepEqual(runs, want) {
			return fmt.Errorf("runs = %v, want %v", runs, want)
		}
		return nil
	})
}

// paperView builds the Fig. 2 view for a rank: etype = int+double pair,
// filetype strides over nprocs pairs, displacement = rank * pair size.
func paperView(f *File, rank, nprocs, pairs int) error {
	etype, err := datatype.Struct([]int{1, 1}, []int64{0, 4}, []datatype.Type{datatype.Int, datatype.Double})
	if err != nil {
		return err
	}
	ft, err := datatype.Vector(pairs, 1, nprocs, etype)
	if err != nil {
		return err
	}
	rt, err := datatype.Resized(ft, int64(pairs*nprocs)*etype.Extent())
	if err != nil {
		return err
	}
	return f.SetView(int64(rank)*etype.Extent(), etype, rt)
}

// paperReference computes the expected file contents of the Fig. 2 pattern:
// process p's i-th (int, double) pair lands at block index i*nprocs+p.
func paperReference(nprocs, pairs int) []byte {
	out := make([]byte, nprocs*pairs*12)
	for p := 0; p < nprocs; p++ {
		for i := 0; i < pairs; i++ {
			off := (i*nprocs + p) * 12
			binary.LittleEndian.PutUint32(out[off:], uint32(p*1000+i))
			binary.LittleEndian.PutUint64(out[off+4:], uint64(p*7000+i))
		}
	}
	return out
}

func TestWriteAllPaperExample(t *testing.T) {
	const procs, pairs = 2, 3
	var snapshot []byte
	run(t, procs, func(c *mpi.Comm) error {
		f, err := Open(c, "fig2")
		if err != nil {
			return err
		}
		if err := paperView(f, c.Rank(), procs, pairs); err != nil {
			return err
		}
		// Combine the two "arrays" into one application buffer, as
		// Program 2 requires.
		buf := make([]byte, pairs*12)
		for i := 0; i < pairs; i++ {
			binary.LittleEndian.PutUint32(buf[i*12:], uint32(c.Rank()*1000+i))
			binary.LittleEndian.PutUint64(buf[i*12+4:], uint64(c.Rank()*7000+i))
		}
		if err := f.WriteAll(buf); err != nil {
			return err
		}
		if c.Rank() == 0 {
			snapshot = f.PFS().Snapshot()
		}
		return nil
	})
	want := paperReference(procs, pairs)
	if !bytes.Equal(snapshot, want) {
		t.Fatalf("file contents differ\n got %v\nwant %v", snapshot, want)
	}
}

func TestReadAllPaperExample(t *testing.T) {
	const procs, pairs = 4, 5
	run(t, procs, func(c *mpi.Comm) error {
		f, err := Open(c, "fig2r")
		if err != nil {
			return err
		}
		// Seed the file from rank 0 with the reference image.
		if c.Rank() == 0 {
			if err := f.WriteAt(0, paperReference(procs, pairs)); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := paperView(f, c.Rank(), procs, pairs); err != nil {
			return err
		}
		got, err := f.ReadAll(int64(pairs * 12))
		if err != nil {
			return err
		}
		for i := 0; i < pairs; i++ {
			iv := binary.LittleEndian.Uint32(got[i*12:])
			dv := binary.LittleEndian.Uint64(got[i*12+4:])
			if iv != uint32(c.Rank()*1000+i) || dv != uint64(c.Rank()*7000+i) {
				return fmt.Errorf("rank %d pair %d = (%d,%d)", c.Rank(), i, iv, dv)
			}
		}
		return nil
	})
}

func TestWriteAllManyRanksMatchesReference(t *testing.T) {
	const procs, pairs = 8, 16
	var snapshot []byte
	run(t, procs, func(c *mpi.Comm) error {
		f, err := Open(c, "many")
		if err != nil {
			return err
		}
		if err := paperView(f, c.Rank(), procs, pairs); err != nil {
			return err
		}
		buf := make([]byte, pairs*12)
		for i := 0; i < pairs; i++ {
			binary.LittleEndian.PutUint32(buf[i*12:], uint32(c.Rank()*1000+i))
			binary.LittleEndian.PutUint64(buf[i*12+4:], uint64(c.Rank()*7000+i))
		}
		if err := f.WriteAll(buf); err != nil {
			return err
		}
		if c.Rank() == 0 {
			snapshot = f.PFS().Snapshot()
		}
		return nil
	})
	if !bytes.Equal(snapshot, paperReference(procs, pairs)) {
		t.Fatal("8-rank collective write does not match reference")
	}
}

func TestWriteAllWithHolesPreservesExistingBytes(t *testing.T) {
	const procs = 2
	var snapshot []byte
	run(t, procs, func(c *mpi.Comm) error {
		f, err := Open(c, "holes")
		if err != nil {
			return err
		}
		// Pre-existing content everywhere.
		if c.Rank() == 0 {
			if err := f.WriteAt(0, bytes.Repeat([]byte{0xEE}, 64)); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Each rank writes 4 bytes every 32 bytes: most of the domain is
		// a hole.
		ft, _ := datatype.Vector(2, 1, 8, datatype.Int)
		rt, _ := datatype.Resized(ft, 64)
		if err := f.SetView(int64(16*c.Rank()), datatype.Int, rt); err != nil {
			return err
		}
		if err := f.WriteAll([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			return err
		}
		if c.Rank() == 0 {
			snapshot = f.PFS().Snapshot()
		}
		return nil
	})
	want := bytes.Repeat([]byte{0xEE}, 64)
	copy(want[0:], []byte{1, 2, 3, 4})
	copy(want[32:], []byte{5, 6, 7, 8})
	copy(want[16:], []byte{1, 2, 3, 4})
	copy(want[48:], []byte{5, 6, 7, 8})
	if !bytes.Equal(snapshot, want) {
		t.Fatalf("holes overwritten:\n got %v\nwant %v", snapshot, want)
	}
}

func TestWriteAllEmptyRequestAllRanks(t *testing.T) {
	run(t, 3, func(c *mpi.Comm) error {
		f, err := Open(c, "empty")
		if err != nil {
			return err
		}
		return f.WriteAll(nil)
	})
}

func TestReadAllEmptyRequest(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, "emptyr")
		if err != nil {
			return err
		}
		got, err := f.ReadAll(0)
		if err != nil {
			return err
		}
		if len(got) != 0 {
			return fmt.Errorf("got %d bytes", len(got))
		}
		return nil
	})
}

func TestWriteAllAggregatorOOM(t *testing.T) {
	m := cluster.Lonestar()
	m.ByteScale = 1 << 21 // every real byte costs 2 MiB simulated
	_, err := mpi.Run(mpi.Config{Procs: 12, Machine: m, EnforceMemory: true}, func(c *mpi.Comm) error {
		f, err := Open(c, "oom")
		if err != nil {
			return err
		}
		// 2 KiB per rank -> 4 GiB simulated aggregate; each aggregator's
		// domain buffer alone exceeds the 2 GiB per-rank share? Domain is
		// aggregate/12 ~ 341 MiB; make the request bigger via a large
		// contiguous region per rank instead: each rank writes 2 KiB at
		// rank*2KiB (domain per aggregator = 2 KiB = 4 GiB simulated).
		if err := f.SeekTo(int64(c.Rank()) * 2048); err != nil {
			return err
		}
		return f.WriteAll(make([]byte, 2048))
	})
	if err == nil {
		t.Fatal("expected aggregator OOM")
	}
	if !errors.Is(err, cluster.ErrOutOfMemory) && !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("error = %v", err)
	}
}

func TestRandomInterleavedCollectiveRoundTrip(t *testing.T) {
	// Randomized cross-check: every rank writes random blocks through a
	// random (but monotone) indexed view; then all ranks read them back
	// collectively and compare.
	for seed := int64(0); seed < 3; seed++ {
		const procs = 4
		var snapshot []byte
		refs := make([][]byte, procs)
		views := make([]datatype.Type, procs)
		rng := rand.New(rand.NewSource(seed))
		// Build non-overlapping per-rank views over a 4 KiB file space:
		// slot i belongs to rank i%procs; each rank takes a random subset
		// of its slots.
		const slots = 64
		const slotLen = 16
		for r := 0; r < procs; r++ {
			var lens, displs []int
			for s := r; s < slots; s += procs {
				if rng.Intn(3) == 0 {
					continue // leave a hole
				}
				lens = append(lens, slotLen)
				displs = append(displs, s*slotLen)
			}
			if len(lens) == 0 {
				lens, displs = []int{slotLen}, []int{r * slotLen}
			}
			ty, err := datatype.Indexed(lens, displs, datatype.Byte)
			if err != nil {
				t.Fatal(err)
			}
			views[r] = ty
			data := make([]byte, ty.Size())
			rng.Read(data)
			refs[r] = data
		}
		name := fmt.Sprintf("rand%d", seed)
		run(t, procs, func(c *mpi.Comm) error {
			f, err := Open(c, name)
			if err != nil {
				return err
			}
			if err := f.SetView(0, datatype.Byte, views[c.Rank()]); err != nil {
				return err
			}
			if err := f.WriteAll(refs[c.Rank()]); err != nil {
				return err
			}
			if err := f.SeekTo(0); err != nil {
				return err
			}
			got, err := f.ReadAll(int64(len(refs[c.Rank()])))
			if err != nil {
				return err
			}
			if !bytes.Equal(got, refs[c.Rank()]) {
				return fmt.Errorf("rank %d: collective read-back mismatch", c.Rank())
			}
			if c.Rank() == 0 {
				snapshot = f.PFS().Snapshot()
			}
			return nil
		})
		// Verify the file against a serially assembled reference.
		want := make([]byte, 0)
		for r := 0; r < procs; r++ {
			at := 0
			for _, s := range views[r].Segments() {
				end := int(s.Off + s.Len)
				if end > len(want) {
					want = append(want, make([]byte, end-len(want))...)
				}
				copy(want[s.Off:end], refs[r][at:at+int(s.Len)])
				at += int(s.Len)
			}
		}
		if !bytes.Equal(snapshot[:len(want)], want) {
			t.Fatalf("seed %d: file does not match serial reference", seed)
		}
	}
}

func TestFileDomains(t *testing.T) {
	p := extent.NewPartition(100, 200, 4)
	want := []extent.Extent{{Off: 100, Len: 25}, {Off: 125, Len: 25}, {Off: 150, Len: 25}, {Off: 175, Len: 25}}
	if doms := p.Domains(); !reflect.DeepEqual(doms, want) {
		t.Fatalf("Domains = %v", doms)
	}
	// Non-divisible: last domain clipped.
	p = extent.NewPartition(0, 10, 3)
	if doms := p.Domains(); doms[2].End() != 10 || doms[0].Len != 4 {
		t.Fatalf("Domains = %v", doms)
	}
	// Empty domain.
	p = extent.NewPartition(5, 5, 2)
	if doms := p.Domains(); doms[0].Len != 0 || doms[1].Len != 0 {
		t.Fatalf("Domains = %v", doms)
	}
}

func TestSplitByDomain(t *testing.T) {
	p := extent.NewPartition(0, 100, 2)
	runs := []datatype.Segment{{Off: 40, Len: 20}} // spans the boundary at 50
	parts := p.Split(runs)
	if !reflect.DeepEqual(parts[0], []extent.Extent{{Off: 40, Len: 10}}) {
		t.Fatalf("parts[0] = %v", parts[0])
	}
	if !reflect.DeepEqual(parts[1], []extent.Extent{{Off: 50, Len: 10}}) {
		t.Fatalf("parts[1] = %v", parts[1])
	}
}

func TestEncodeDecodeRuns(t *testing.T) {
	runs := []datatype.Segment{{Off: 1, Len: 2}, {Off: 100, Len: 3}}
	payload := []byte{9, 8, 7, 6, 5}
	msg := encodeRuns(runs, payload)
	gotRuns, gotPayload, err := decodeRuns(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRuns, runs) || !bytes.Equal(gotPayload, payload) {
		t.Fatalf("round trip: %v %v", gotRuns, gotPayload)
	}
	if _, _, err := decodeRuns([]byte{1}); err == nil {
		t.Fatal("truncated message accepted")
	}
	if _, _, err := decodeRuns([]byte{5, 0, 0, 0}); err == nil {
		t.Fatal("short run table accepted")
	}
}

func TestCoversDomain(t *testing.T) {
	if !extent.Covers([]datatype.Segment{{Off: 10, Len: 10}, {Off: 20, Len: 10}}, 10, 30) {
		t.Fatal("full coverage not detected")
	}
	if extent.Covers([]datatype.Segment{{Off: 10, Len: 5}, {Off: 20, Len: 10}}, 10, 30) {
		t.Fatal("hole not detected")
	}
	if extent.Covers(nil, 10, 30) {
		t.Fatal("empty coverage accepted")
	}
}

// TestOpenRejectsEmptyName covers Open's error contract: MPI_File_open
// reports failures through a return code, and so does Open now.
func TestOpenRejectsEmptyName(t *testing.T) {
	_, err := mpi.Run(mpi.Config{Procs: 1, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
		if f, err := Open(c, ""); err == nil || f != nil {
			t.Errorf("Open with empty name: f=%v err=%v, want nil+error", f, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
