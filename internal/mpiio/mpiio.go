// Package mpiio implements the MPI-IO layer of the simulation: shared file
// handles, file views built from derived datatypes, independent per-piece
// I/O ("vanilla MPI-IO" in the paper's terminology), and OCIO — the
// original collective I/O of ROMIO, i.e. the two-phase algorithm with file
// views, aggregators, and an all-to-all data exchange (paper §III).
//
// TCIO (package tcio) is the paper's alternative to everything here: it
// needs none of the file-view machinery and replaces the two-phase exchange
// with one-sided transfers into level-2 buffers.
package mpiio

import (
	"fmt"

	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/faults"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/simtime"
	"github.com/tcio/tcio/internal/storage"
)

// Per-item library CPU costs, multiplied by the machine's ByteScale (a
// scaled run stands for ByteScale times as many items).
const (
	// callCPU is charged per independent I/O call (request setup).
	callCPU = 150 * simtime.Nanosecond
	// runCPU is charged per flattened (offset,len) run the two-phase
	// machinery encodes, decodes, scatters, or assembles. The cost of this
	// scatter-gather processing is a recognized OCIO overhead (the
	// view-based collective I/O work the paper cites exists to cut it).
	runCPU = 60 * simtime.Nanosecond
)

// File is one rank's handle on a shared file. A File is not safe for
// concurrent use; each rank owns its handle, as in MPI.
type File struct {
	c *mpi.Comm

	// store is the file system access path: every request goes through the
	// storage layer, which handles retry, virtual-time charging, and fault
	// accounting in one place.
	store *storage.Client

	pos int64 // independent file pointer, in bytes past the view

	disp     int64
	etype    datatype.Type
	filetype datatype.Type

	// aggregators is the number of ranks that perform file accesses in
	// collective calls (ROMIO's cb_nodes hint). 0 means every rank, which
	// is how the paper's experiments ran ("we do not enable collective
	// buffering"). See SetAggregators.
	aggregators int

	// sieving enables data sieving for independent reads (ROMIO's other
	// classic optimization): a non-contiguous request is served by one
	// large contiguous read spanning it, then filtered in memory.
	sieving bool
}

// SetAggregators restricts collective I/O to n aggregator ranks (ROMIO's
// collective-buffering cb_nodes hint; the paper's related work, [20][21]).
// n = 0 restores the default of every rank aggregating. The aggregator set
// is ranks 0, P/n, 2P/n, ... — one per node group, as ROMIO picks.
func (f *File) SetAggregators(n int) error {
	if n < 0 || n > f.c.Size() {
		return fmt.Errorf("mpiio: %d aggregators with %d ranks", n, f.c.Size())
	}
	f.aggregators = n
	return nil
}

// SetSieving toggles data sieving for independent reads.
func (f *File) SetSieving(on bool) { f.sieving = on }

// SetRetryPolicy overrides the policy (default faults.DefaultRetryPolicy)
// under which this handle's file system requests absorb transient injected
// faults. A zero-budget policy (faults.NoRetry()) turns the first transient
// fault into a permanent error wrapping faults.ErrExhaustedRetries.
func (f *File) SetRetryPolicy(p faults.RetryPolicy) { f.store.SetRetryPolicy(p) }

// Retries reports the transient faults this handle absorbed with backoff.
func (f *File) Retries() int64 { return f.store.Retries() }

// writeRetry issues one file system write through the storage layer, which
// advances the rank's clock through backoffs and the final attempt.
func (f *File) writeRetry(off int64, data []byte) error {
	return f.store.WriteAt("mpiio: write", off, data)
}

// readRetry is writeRetry's read-side counterpart.
func (f *File) readRetry(off int64, dst []byte) error {
	return f.store.ReadAt("mpiio: read", off, dst)
}

// chargeCPU charges n items' worth of per-item processing cost.
func (f *File) chargeCPU(per simtime.Duration, n int) {
	f.c.Compute(per * simtime.Duration(n) * simtime.Duration(f.c.Machine().ByteScale))
}

// Open opens (creating if necessary) the named shared file. Open is not
// collective in this runtime — the underlying object is shared by name —
// but callers conventionally open on all ranks, as MPI_File_open requires.
// The error return matches MPI_File_open's (and tcio.Open's) contract;
// today only an empty name is rejected, but callers must not assume that
// stays the whole list.
func Open(c *mpi.Comm, name string) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("mpiio: open with empty name")
	}
	return &File{
		c:        c,
		store:    storage.NewClient(c.FS().Open(name), c.Node(), c.Rank(), c),
		etype:    datatype.Byte,
		filetype: datatype.Byte,
	}, nil
}

// PFS exposes the underlying simulated file (verification helper).
func (f *File) PFS() *pfs.File { return f.store.File() }

// SetView installs a file view (MPI_File_set_view): the visible bytes of
// the file are those selected by repeating filetype starting at byte
// displacement disp; etype is the elementary unit of offsets.
func (f *File) SetView(disp int64, etype, filetype datatype.Type) error {
	if disp < 0 {
		return fmt.Errorf("mpiio: negative view displacement %d", disp)
	}
	if etype.Size() <= 0 || filetype.Size() <= 0 {
		return fmt.Errorf("mpiio: empty etype or filetype")
	}
	if filetype.Size()%etype.Size() != 0 {
		return fmt.Errorf("mpiio: filetype size %d not a multiple of etype size %d",
			filetype.Size(), etype.Size())
	}
	f.disp = disp
	f.etype = etype
	f.filetype = filetype
	f.pos = 0
	return nil
}

// SeekTo positions the independent file pointer, in bytes of visible data.
func (f *File) SeekTo(pos int64) error {
	if pos < 0 {
		return fmt.Errorf("mpiio: SeekTo(%d)", pos)
	}
	f.pos = pos
	return nil
}

// flatten maps n visible bytes starting at visible offset pos into absolute
// file runs according to the current view.
func (f *File) flatten(pos, n int64) ([]datatype.Segment, error) {
	if n < 0 || pos < 0 {
		return nil, fmt.Errorf("mpiio: flatten(pos=%d, n=%d)", pos, n)
	}
	if n == 0 {
		return nil, nil
	}
	ftSize := f.filetype.Size()
	ftExtent := f.filetype.Extent()
	segs := f.filetype.Segments()

	out := make([]datatype.Segment, 0, 16)
	// Skip whole filetype instances before pos.
	inst := pos / ftSize
	skip := pos % ftSize
	remaining := n
	for remaining > 0 {
		base := f.disp + inst*ftExtent
		for _, s := range segs {
			if remaining <= 0 {
				break
			}
			runOff, runLen := s.Off, s.Len
			if skip > 0 {
				if skip >= runLen {
					skip -= runLen
					continue
				}
				runOff += skip
				runLen -= skip
				skip = 0
			}
			if runLen > remaining {
				runLen = remaining
			}
			out = append(out, datatype.Segment{Off: base + runOff, Len: runLen})
			remaining -= runLen
		}
		inst++
	}
	runs := datatype.Coalesce(out)
	if mutate.Enabled(mutate.MPIIOFlattenDropRun) && len(runs) > 1 {
		runs = runs[1:]
	}
	return runs, nil
}

// Write writes data independently at the current file pointer through the
// view, advancing the pointer. This is the paper's "vanilla MPI-IO": each
// piece is its own file system request — no aggregation, no coordination.
func (f *File) Write(data []byte) error {
	if err := f.WriteAt(f.pos, data); err != nil {
		return err
	}
	f.pos += int64(len(data))
	return nil
}

// WriteAt writes data independently at the given visible byte offset.
func (f *File) WriteAt(pos int64, data []byte) error {
	f.chargeCPU(callCPU, 1)
	runs, err := f.flatten(pos, int64(len(data)))
	if err != nil {
		return err
	}
	consumed := int64(0)
	for _, r := range runs {
		if err := f.writeRetry(r.Off, data[consumed:consumed+r.Len]); err != nil {
			return err
		}
		consumed += r.Len
	}
	return nil
}

// Read reads n visible bytes independently at the current pointer.
func (f *File) Read(n int64) ([]byte, error) {
	data, err := f.ReadAt(f.pos, n)
	if err != nil {
		return nil, err
	}
	f.pos += int64(len(data))
	return data, nil
}

// ReadAt reads n visible bytes independently at the given visible offset.
// With sieving enabled, a non-contiguous request is served by one large
// contiguous read spanning all its runs (ROMIO's data sieving), trading
// extra bytes on the wire for far fewer requests.
func (f *File) ReadAt(pos, n int64) ([]byte, error) {
	f.chargeCPU(callCPU, 1)
	runs, err := f.flatten(pos, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if f.sieving && len(runs) > 1 {
		lo := runs[0].Off
		hi := runs[len(runs)-1].Off + runs[len(runs)-1].Len
		span := make([]byte, hi-lo)
		if err := f.readRetry(lo, span); err != nil {
			return nil, err
		}
		f.chargeCPU(runCPU, len(runs)) // in-memory filtering
		filled := int64(0)
		for _, r := range runs {
			copy(out[filled:filled+r.Len], span[r.Off-lo:r.Off-lo+r.Len])
			filled += r.Len
		}
		return out, nil
	}
	filled := int64(0)
	for _, r := range runs {
		if err := f.readRetry(r.Off, out[filled:filled+r.Len]); err != nil {
			return nil, err
		}
		filled += r.Len
	}
	return out, nil
}

// Close releases the handle. The shared file object persists in the
// simulated file system.
func (f *File) Close() error { return nil }
