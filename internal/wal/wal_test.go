package wal

// Property tests for the journal record encoding, quick-check style
// (seeded generators, mirroring internal/extent's property tests):
//
//   - arbitrary run lists round-trip byte-exactly through
//     EncodeEpochRecords + EncodeCommit + Decode;
//   - truncating the image at EVERY byte boundary decodes cleanly to the
//     epochs committed within the prefix — a torn tail is never an error
//     and never resurrects an uncommitted epoch;
//   - flipping any byte of a committed image either leaves the decoded
//     prefix intact (the flip landed past the last commit) or surfaces
//     typed ErrCorrupt — never silently different data;
//   - a journal written without commit markers (the skip-commit-marker
//     mutant's output) is structural corruption, not data.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/tcio/tcio/internal/extent"
)

// genRuns draws a random run list: offsets ascending and disjoint, data
// bytes a function of (seed, position) so mismatches localize.
func genRuns(rng *rand.Rand, n int) []Run {
	runs := make([]Run, 0, n)
	off := int64(rng.Intn(64))
	for i := 0; i < n; i++ {
		ln := int64(1 + rng.Intn(96))
		data := make([]byte, ln)
		for j := range data {
			data[j] = byte(off + int64(j)*7 + 3)
		}
		runs = append(runs, Run{Extent: extent.Extent{Off: off, Len: ln}, Data: data})
		off += ln + int64(rng.Intn(128))
	}
	return runs
}

// buildImage journals epochs epoch-by-epoch the way the Writer lays them
// out: record batch then commit marker, appended contiguously. It returns
// the image and the byte offset just past each epoch's commit marker.
func buildImage(epochs []Epoch) (img []byte, commitEnds []int) {
	for _, ep := range epochs {
		batch, _ := EncodeEpochRecords(ep.Rank, ep.Seq, ep.Runs)
		img = append(img, batch...)
		img = append(img, EncodeCommit(ep.Seq)...)
		commitEnds = append(commitEnds, len(img))
	}
	return img, commitEnds
}

func epochsEqual(t *testing.T, got, want []Epoch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d epochs, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Rank != w.Rank || g.Seq != w.Seq || len(g.Runs) != len(w.Runs) {
			t.Fatalf("epoch %d: got rank=%d seq=%d runs=%d, want rank=%d seq=%d runs=%d",
				i, g.Rank, g.Seq, len(g.Runs), w.Rank, w.Seq, len(w.Runs))
		}
		for j := range w.Runs {
			if g.Runs[j].Extent != w.Runs[j].Extent {
				t.Fatalf("epoch %d run %d: extent %+v, want %+v", i, j, g.Runs[j].Extent, w.Runs[j].Extent)
			}
			if !bytes.Equal(g.Runs[j].Data, w.Runs[j].Data) {
				t.Fatalf("epoch %d run %d: data mismatch", i, j)
			}
		}
	}
}

func TestRoundTripArbitraryRunLists(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		nEpochs := 1 + rng.Intn(5)
		var epochs []Epoch
		for e := 0; e < nEpochs; e++ {
			epochs = append(epochs, Epoch{
				Rank: rng.Intn(16),
				Seq:  int64(e + 1),
				Runs: genRuns(rng, 1+rng.Intn(6)),
			})
		}
		img, _ := buildImage(epochs)
		got, err := Decode(img)
		if err != nil {
			t.Fatalf("trial %d: clean image failed to decode: %v", trial, err)
		}
		epochsEqual(t, got, epochs)
	}
}

// TestTornTailEveryByteBoundary cuts the image at every byte position and
// demands the decode equal exactly the epochs whose commit marker fits the
// prefix — the crash-anywhere contract.
func TestTornTailEveryByteBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		var epochs []Epoch
		for e := 0; e < 1+rng.Intn(4); e++ {
			epochs = append(epochs, Epoch{
				Rank: rng.Intn(8),
				Seq:  int64(e + 1),
				Runs: genRuns(rng, 1+rng.Intn(4)),
			})
		}
		img, commitEnds := buildImage(epochs)
		for cut := 0; cut <= len(img); cut++ {
			wantCommitted := 0
			for _, end := range commitEnds {
				if end <= cut {
					wantCommitted++
				}
			}
			got, err := Decode(img[:cut])
			if err != nil {
				t.Fatalf("trial %d cut %d/%d: torn tail decoded as corruption: %v",
					trial, cut, len(img), err)
			}
			if len(got) != wantCommitted {
				t.Fatalf("trial %d cut %d/%d: decoded %d epochs, want %d",
					trial, cut, len(img), len(got), wantCommitted)
			}
			epochsEqual(t, got, epochs[:wantCommitted])
		}
	}
}

// checksummedBytes lists the positions of an image's checksum and payload
// bytes — every byte a flip of which MUST surface as ErrCorrupt. Length
// prefixes are deliberately excluded: corrupting a length can only make a
// record look torn, and a tear is (correctly) indistinguishable from a
// crash, so it decodes cleanly to the last commit instead of erroring.
func checksummedBytes(img []byte) []int {
	var out []int
	for pos := 0; pos+headerSize <= len(img); {
		n := int(uint32(img[pos]) | uint32(img[pos+1])<<8 | uint32(img[pos+2])<<16 | uint32(img[pos+3])<<24)
		for i := pos + 4; i < pos+headerSize+n && i < len(img); i++ {
			out = append(out, i)
		}
		pos += headerSize + n
	}
	return out
}

// TestCorruptedChecksumRejected flips one checksummed byte of a complete
// record and demands the typed error; the epochs committed before the
// flipped record must still decode.
func TestCorruptedChecksumRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var epochs []Epoch
		for e := 0; e < 2+rng.Intn(3); e++ {
			epochs = append(epochs, Epoch{
				Rank: rng.Intn(8),
				Seq:  int64(e + 1),
				Runs: genRuns(rng, 1+rng.Intn(3)),
			})
		}
		img, commitEnds := buildImage(epochs)
		flippable := checksummedBytes(img)
		pos := flippable[rng.Intn(len(flippable))]
		mut := append([]byte(nil), img...)
		mut[pos] ^= 0x40
		got, err := Decode(mut)
		if err == nil {
			t.Fatalf("trial %d: flip at %d/%d decoded cleanly", trial, pos, len(img))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trial %d: corruption error is not typed ErrCorrupt: %v", trial, err)
		}
		// Epochs sealed strictly before the flipped byte's record survive.
		intact := 0
		for _, end := range commitEnds {
			if end <= pos {
				intact++
			}
		}
		if len(got) < intact {
			t.Fatalf("trial %d: flip at %d lost %d intact epochs (decoded %d)",
				trial, pos, intact, len(got))
		}
	}
}

// TestZeroLengthRecordRejected pins the framing edge case: a zero payload
// length is never produced by the writer and must read as corruption, not
// as an infinite loop or a silent skip.
func TestZeroLengthRecordRejected(t *testing.T) {
	img := make([]byte, headerSize) // length 0, checksum 0
	if _, err := Decode(img); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-length record decoded without ErrCorrupt: %v", err)
	}
}

// TestUncommittedEpochsAreStructuralCorruption journals two epochs without
// commit markers — the byte stream the skip-commit-marker mutant writes —
// and demands the second header surface ErrCorrupt at decode time.
func TestUncommittedEpochsAreStructuralCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b1, _ := EncodeEpochRecords(0, 1, genRuns(rng, 2))
	b2, _ := EncodeEpochRecords(0, 2, genRuns(rng, 2))
	img := append(append([]byte(nil), b1...), b2...)
	got, err := Decode(img)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("back-to-back uncommitted epochs decoded without ErrCorrupt: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("uncommitted epochs leaked %d committed epochs", len(got))
	}
}

// TestDataExtentsAddressRunBytes verifies the journal-relative extents
// EncodeEpochRecords reports: slicing the batch at each extent must yield
// exactly that run's data — the invariant the spill re-fault path relies on.
func TestDataExtentsAddressRunBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		runs := genRuns(rng, 1+rng.Intn(6))
		batch, dataAt := EncodeEpochRecords(3, 7, runs)
		if len(dataAt) != len(runs) {
			t.Fatalf("trial %d: %d extents for %d runs", trial, len(dataAt), len(runs))
		}
		for i, ext := range dataAt {
			if !bytes.Equal(batch[ext.Off:ext.Off+ext.Len], runs[i].Data) {
				t.Fatalf("trial %d run %d: extent %+v does not address the run's bytes", trial, i, ext)
			}
		}
	}
}
