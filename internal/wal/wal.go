// Package wal implements the per-file, per-rank journaled epoch log under
// tcio's level-2 tier (DESIGN.md §2f). Each flush epoch appends a batch of
// length-prefixed, checksummed records — an epoch header, one record per
// dirty run carrying its absolute file extent and bytes, then a separate
// commit marker — through a storage.Client, so journal traffic pays the
// same retry/trace/virtual-time costs as data writes and chaos faults
// charge identically.
//
// The format is recovery-first: a crash can cut the journal anywhere, and
// Decode must always produce a well-defined answer. The rules are
//
//   - a torn tail (too few bytes for the declared record, or a bare
//     length prefix) is a clean stop: everything after the last commit
//     marker is discarded;
//   - a complete record whose checksum fails is corruption, not a tear —
//     typed ErrCorrupt;
//   - an epoch header arriving while an epoch is still open is structural
//     corruption: the writer seals every epoch with a commit marker before
//     opening the next, so only a bug (or a deliberate mutant) produces it.
//
// Because the commit marker is issued as its own storage request after the
// epoch's record batch, a crash slicing the journal at any virtual time
// yields either a committed epoch or a torn uncommitted tail — never a
// half-committed one.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/tcio/tcio/internal/extent"
	"github.com/tcio/tcio/internal/mutate"
	"github.com/tcio/tcio/internal/storage"
	"github.com/tcio/tcio/internal/trace"
)

// Record framing: [4B little-endian payload length][4B CRC-32 (IEEE) of the
// payload][payload]. payload[0] is the record type.
const (
	headerSize = 8 // length + checksum prefix

	recEpoch  = 1 // payload: type, int32 rank, int64 epoch
	recRun    = 2 // payload: type, int64 epoch, int64 file offset, data...
	recCommit = 3 // payload: type, int64 epoch

	epochPayloadLen  = 13
	commitPayloadLen = 9
	runPayloadMin    = 17
)

// ErrCorrupt is returned when the journal contains a structurally complete
// but invalid record: a checksum mismatch, an unknown or malformed payload,
// or an epoch header inside a still-open epoch. Match it with errors.Is.
// Torn tails are NOT corruption — they are the expected shape of a crash
// and decode cleanly to the last committed epoch.
var ErrCorrupt = errors.New("wal: corrupt record")

// Run is one journaled dirty run: Extent.Off is the absolute file offset.
type Run struct {
	Extent extent.Extent
	Data   []byte
}

// Epoch is one committed flush epoch of one rank's journal.
type Epoch struct {
	Rank int
	Seq  int64 // the global flush-epoch counter value
	Runs []Run
}

// appendRecord frames one payload into buf.
func appendRecord(buf []byte, payload []byte) []byte {
	var pfx [headerSize]byte
	binary.LittleEndian.PutUint32(pfx[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(pfx[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, pfx[:]...)
	return append(buf, payload...)
}

// EncodeEpochRecords renders the header and run records of one epoch (no
// commit marker) as one contiguous byte batch, returning the batch and the
// journal-relative extent each run's DATA bytes occupy within it — the
// re-fault addresses a spilled segment is read back from.
func EncodeEpochRecords(rank int, seq int64, runs []Run) (batch []byte, dataAt []extent.Extent) {
	var p [runPayloadMin]byte
	p[0] = recEpoch
	binary.LittleEndian.PutUint32(p[1:5], uint32(int32(rank)))
	binary.LittleEndian.PutUint64(p[5:13], uint64(seq))
	batch = appendRecord(batch, p[:epochPayloadLen])
	dataAt = make([]extent.Extent, len(runs))
	for i, r := range runs {
		payload := make([]byte, runPayloadMin+len(r.Data))
		payload[0] = recRun
		binary.LittleEndian.PutUint64(payload[1:9], uint64(seq))
		binary.LittleEndian.PutUint64(payload[9:17], uint64(r.Extent.Off))
		copy(payload[runPayloadMin:], r.Data)
		dataAt[i] = extent.Extent{
			Off: int64(len(batch)) + headerSize + runPayloadMin,
			Len: int64(len(r.Data)),
		}
		batch = appendRecord(batch, payload)
	}
	return batch, dataAt
}

// EncodeCommit renders the commit marker sealing epoch seq.
func EncodeCommit(seq int64) []byte {
	var p [commitPayloadLen]byte
	p[0] = recCommit
	binary.LittleEndian.PutUint64(p[1:9], uint64(seq))
	return appendRecord(nil, p[:])
}

// Decode scans a journal image and returns its committed epochs in append
// order. Bytes after the last commit marker that do not complete a further
// committed epoch are discarded (the torn tail of a crash). Structural
// corruption — bad checksum on a complete record, malformed payload, a
// header inside an open epoch, a commit or run for the wrong epoch —
// returns ErrCorrupt.
func Decode(img []byte) ([]Epoch, error) {
	var committed []Epoch
	var open *Epoch
	for pos := 0; pos < len(img); {
		if len(img)-pos < headerSize {
			break // torn length prefix
		}
		n := int(binary.LittleEndian.Uint32(img[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(img[pos+4 : pos+8])
		if len(img)-pos-headerSize < n {
			break // torn record body
		}
		payload := img[pos+headerSize : pos+headerSize+n]
		if n == 0 || crc32.ChecksumIEEE(payload) != sum {
			return committed, fmt.Errorf("%w: checksum mismatch at byte %d", ErrCorrupt, pos)
		}
		switch payload[0] {
		case recEpoch:
			if n != epochPayloadLen {
				return committed, fmt.Errorf("%w: epoch header of %d bytes at %d", ErrCorrupt, n, pos)
			}
			if open != nil {
				return committed, fmt.Errorf(
					"%w: epoch header inside uncommitted epoch %d at byte %d", ErrCorrupt, open.Seq, pos)
			}
			open = &Epoch{
				Rank: int(int32(binary.LittleEndian.Uint32(payload[1:5]))),
				Seq:  int64(binary.LittleEndian.Uint64(payload[5:13])),
			}
		case recRun:
			if n < runPayloadMin {
				return committed, fmt.Errorf("%w: run record of %d bytes at %d", ErrCorrupt, n, pos)
			}
			if open == nil {
				return committed, fmt.Errorf("%w: run outside any epoch at byte %d", ErrCorrupt, pos)
			}
			if seq := int64(binary.LittleEndian.Uint64(payload[1:9])); seq != open.Seq {
				return committed, fmt.Errorf("%w: run for epoch %d inside epoch %d at byte %d",
					ErrCorrupt, seq, open.Seq, pos)
			}
			data := append([]byte(nil), payload[runPayloadMin:]...)
			open.Runs = append(open.Runs, Run{
				Extent: extent.Extent{
					Off: int64(binary.LittleEndian.Uint64(payload[9:17])),
					Len: int64(len(data)),
				},
				Data: data,
			})
		case recCommit:
			if n != commitPayloadLen {
				return committed, fmt.Errorf("%w: commit marker of %d bytes at %d", ErrCorrupt, n, pos)
			}
			if open == nil {
				return committed, fmt.Errorf("%w: commit outside any epoch at byte %d", ErrCorrupt, pos)
			}
			if seq := int64(binary.LittleEndian.Uint64(payload[1:9])); seq != open.Seq {
				return committed, fmt.Errorf("%w: commit for epoch %d sealing epoch %d at byte %d",
					ErrCorrupt, seq, open.Seq, pos)
			}
			committed = append(committed, *open)
			open = nil
		default:
			return committed, fmt.Errorf("%w: unknown record type %d at byte %d", ErrCorrupt, payload[0], pos)
		}
		pos += headerSize + n
	}
	return committed, nil
}

// Stats counts one Writer's journal activity.
type Stats struct {
	// Epochs counts non-empty epochs whose record batch was appended.
	Epochs int64
	// Appends counts storage write requests issued (record batches plus
	// commit markers).
	Appends int64
	// Bytes counts journal bytes written.
	Bytes int64
	// Commits counts commit markers issued. Equal to Epochs in a correct
	// writer; the gap is the observable of the skip-commit-marker mutant.
	Commits int64
}

// Writer appends epochs to one rank's journal file through a
// storage.Client. It is single-writer by construction (one rank owns one
// journal) and tracks the append position itself, so the journal file needs
// no size round trips.
type Writer struct {
	store *storage.Client
	rank  int
	pos   int64
	stats Stats
}

// NewWriter builds a writer appending at offset 0 of the client's file.
func NewWriter(store *storage.Client, rank int) *Writer {
	return &Writer{store: store, rank: rank}
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats { return w.stats }

// AppendEpoch journals one flush epoch: the header-plus-runs batch as one
// write request, then the commit marker as a second, separately-faultable
// request. It returns the journal-file extent each run's data bytes landed
// at (the spill re-fault addresses). An empty run list appends nothing.
func (w *Writer) AppendEpoch(seq int64, runs []Run) ([]extent.Extent, error) {
	if len(runs) == 0 {
		return nil, nil
	}
	batch, dataAt := EncodeEpochRecords(w.rank, seq, runs)
	for i := range dataAt {
		dataAt[i].Off += w.pos
	}
	if _, err := w.store.WriteExtents("wal: append", trace.KindJournal, []storage.Request{
		{Off: w.pos, Data: batch, Tag: fmt.Sprintf("epoch=%d runs=%d", seq, len(runs))},
	}); err != nil {
		return nil, err
	}
	w.pos += int64(len(batch))
	w.stats.Epochs++
	w.stats.Appends++
	w.stats.Bytes += int64(len(batch))

	if !mutate.Enabled(mutate.WALSkipCommitMarker) {
		commit := EncodeCommit(seq)
		if _, err := w.store.WriteExtents("wal: commit", trace.KindJournal, []storage.Request{
			{Off: w.pos, Data: commit, Tag: fmt.Sprintf("commit=%d", seq)},
		}); err != nil {
			return nil, err
		}
		w.pos += int64(len(commit))
		w.stats.Appends++
		w.stats.Bytes += int64(len(commit))
		w.stats.Commits++
	}
	return dataAt, nil
}

// ReadBack fills dst with journal bytes from the given journal-file extent
// through the same charged storage path — the spill re-fault read.
func (w *Writer) ReadBack(ext extent.Extent, dst []byte) error {
	_, err := w.store.ReadExtents("wal: refault", trace.KindJournal, []storage.Request{
		{Off: ext.Off, Data: dst[:ext.Len], Tag: fmt.Sprintf("off=%d", ext.Off)},
	})
	return err
}

// Truncate retires the journal after the file's final drain settled: the
// charged, retried, faultable control request that makes recovery a no-op.
// On failure the journal is preserved — better a stale journal replayed
// than a file with no journal and a torn drain.
func (w *Writer) Truncate() error {
	if err := w.store.Truncate("wal: truncate", trace.KindJournal); err != nil {
		return err
	}
	w.pos = 0
	return nil
}
