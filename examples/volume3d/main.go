// Volume3D: the paper's motivating workload (§I, Fig. 1).
//
// A 3D computing volume is decomposed into sub-cubes, one per process (the
// S3D/Pixie3D pattern the introduction cites), and checkpointed to a single
// shared file in x,y,z order. Each process therefore owns many small
// non-contiguous runs of the file, interleaved with every other process —
// exactly the pattern collective I/O exists for.
//
// The example writes the volume twice:
//
//   - with OCIO: an MPI_Type_create_subarray file view plus one collective
//     write — the classic MPI-IO recipe;
//   - with TCIO: a plain loop writing each contiguous row of the sub-cube
//     at its file offset — no datatypes, no view;
//
// verifies both files byte-identical against a serially assembled
// reference, and reports simulated I/O time.
//
//	go run ./examples/volume3d
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/mpiio"
	"github.com/tcio/tcio/internal/pfs"
	"github.com/tcio/tcio/internal/tcio"
)

const (
	N     = 32 // global volume: N^3 cells
	PX    = 2  // process grid: PX*PY*PZ ranks
	PY    = 2
	PZ    = 2
	cell  = 8 // bytes per cell (one double)
	procs = PX * PY * PZ
)

// cellValue is the deterministic value of global cell (x,y,z).
func cellValue(x, y, z int) byte { return byte(x*7 + y*13 + z*29 + 1) }

// fill materializes a rank's sub-cube in row-major (x-major) order.
func fill(rx, ry, rz int) []byte {
	sx, sy, sz := N/PX, N/PY, N/PZ
	buf := make([]byte, sx*sy*sz*cell)
	i := 0
	for x := 0; x < sx; x++ {
		for y := 0; y < sy; y++ {
			for z := 0; z < sz; z++ {
				v := cellValue(rx*sx+x, ry*sy+y, rz*sz+z)
				for b := 0; b < cell; b++ {
					buf[i] = v
					i++
				}
			}
		}
	}
	return buf
}

func main() {
	// Serial reference: the whole volume in x,y,z order.
	reference := make([]byte, N*N*N*cell)
	for x := 0; x < N; x++ {
		for y := 0; y < N; y++ {
			for z := 0; z < N; z++ {
				v := cellValue(x, y, z)
				off := ((x*N+y)*N + z) * cell
				for b := 0; b < cell; b++ {
					reference[off+b] = v
				}
			}
		}
	}

	// One shared file system for both runs, so the files can be compared.
	fs := pfs.New(pfs.DefaultConfig())

	for _, method := range []string{"OCIO", "TCIO"} {
		fs.Reset()
		name := fmt.Sprintf("volume-%s.dat", method)
		rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar(), FS: fs},
			func(c *mpi.Comm) error {
				rz := c.Rank() % PZ
				ry := (c.Rank() / PZ) % PY
				rx := c.Rank() / (PZ * PY)
				mine := fill(rx, ry, rz)
				sx, sy, sz := N/PX, N/PY, N/PZ

				switch method {
				case "OCIO":
					f, err := mpiio.Open(c, name)
					if err != nil {
						return err
					}
					// One subarray datatype describes this rank's cube
					// within the global volume.
					ft, err := datatype.Subarray(
						[]int{N, N, N},
						[]int{sx, sy, sz},
						[]int{rx * sx, ry * sy, rz * sz},
						datatype.Double)
					if err != nil {
						return err
					}
					if err := f.SetView(0, datatype.Double, ft); err != nil {
						return err
					}
					if err := f.WriteAll(mine); err != nil {
						return err
					}
					return f.Close()

				default: // TCIO
					f, err := tcio.Open(c, name, tcio.WriteMode, tcio.Config{
						SegmentSize: 16 << 10,
						NumSegments: (N*N*N*cell)/(procs*(16<<10)) + 1,
					})
					if err != nil {
						return err
					}
					// Plain loop: each contiguous z-row of the cube goes
					// to its file offset. No datatypes, no view.
					row := sz * cell
					for x := 0; x < sx; x++ {
						for y := 0; y < sy; y++ {
							gx, gy, gz := rx*sx+x, ry*sy+y, rz*sz
							off := int64(((gx*N+gy)*N + gz) * cell)
							src := ((x*sy + y) * sz) * cell
							if err := f.WriteAt(off, mine[src:src+row]); err != nil {
								return err
							}
						}
					}
					return f.Close()
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		snap := fs.Open(name).Snapshot()
		if !bytes.Equal(snap, reference) {
			log.Fatalf("%s produced a wrong volume image", method)
		}
		fmt.Printf("%-5s wrote and verified the %dx%dx%d volume (%d KB) in %v simulated\n",
			method, N, N, N, len(reference)/1024, rep.MaxTime)
	}
	fmt.Println("\nboth methods produced the byte-identical x,y,z-ordered volume file")
}
