// Quickstart: the smallest complete TCIO program.
//
// Eight simulated MPI ranks write an interleaved pattern into a shared file
// with plain POSIX-like calls — no file views, no derived datatypes, no
// combine buffers — then read it back lazily and verify every byte.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/tcio"
)

func main() {
	const (
		procs  = 8
		blocks = 64 // per rank
		bsize  = 32 // bytes per block
	)

	rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
		// --- Write phase: every rank writes its blocks round-robin. ---
		cfg := tcio.Config{SegmentSize: 512, NumSegments: 8}
		f, err := tcio.Open(c, "quickstart.dat", tcio.WriteMode, cfg)
		if err != nil {
			return err
		}
		for b := 0; b < blocks; b++ {
			// Block b of rank r lives at file block b*procs + r: the
			// classic interleaved pattern collective I/O exists for.
			off := int64((b*procs + c.Rank()) * bsize)
			data := make([]byte, bsize)
			for i := range data {
				data[i] = byte(c.Rank()*31 + b + i)
			}
			if err := f.WriteAt(off, data); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}

		// --- Read phase: lazy reads, completed by Fetch. ---
		r, err := tcio.Open(c, "quickstart.dat", tcio.ReadMode, cfg)
		if err != nil {
			return err
		}
		got := make([][]byte, blocks)
		for b := 0; b < blocks; b++ {
			off := int64((b*procs + c.Rank()) * bsize)
			got[b] = make([]byte, bsize)
			if err := r.ReadAt(off, got[b]); err != nil {
				return err
			}
		}
		if err := r.Fetch(); err != nil { // data is valid only after Fetch
			return err
		}
		for b := 0; b < blocks; b++ {
			for i := range got[b] {
				if got[b][i] != byte(c.Rank()*31+b+i) {
					return fmt.Errorf("rank %d block %d byte %d corrupted", c.Rank(), b, i)
				}
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			st := f.Stats()
			fmt.Printf("rank 0: %d write calls coalesced into %d one-sided transfers and %d file requests\n",
				st.Writes, st.Level1Flush, st.FSWrites)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d ranks wrote and verified %d bytes in %v simulated time\n",
		procs, procs*blocks*bsize, rep.MaxTime)
}
