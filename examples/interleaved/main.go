// Interleaved: the paper's Figure 2 workload, written three ways.
//
// Each of P processes holds two in-memory arrays (int and double) and must
// place them in a shared file interleaved round-robin. The example runs the
// same workload through:
//
//   - TCIO (Program 3): plain per-piece writes, aggregation is transparent;
//   - OCIO (Program 2): combine buffer + derived datatypes + file view +
//     one collective call;
//   - vanilla MPI-IO: per-piece independent writes, no optimization;
//
// verifies the three files are byte-identical, and reports each method's
// simulated I/O time — a miniature of the paper's Figure 5 experiment.
//
//	go run ./examples/interleaved
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/tcio/tcio/internal/bench"
	"github.com/tcio/tcio/internal/datatype"
)

func main() {
	const procs = 16
	var reference []byte

	for _, method := range []bench.Method{bench.MethodTCIO, bench.MethodOCIO, bench.MethodVanilla} {
		env, err := bench.NewEnv(256) // 1 real byte stands for 256 simulated
		if err != nil {
			log.Fatal(err)
		}
		cfg := bench.SyntheticConfig{
			Method:     method,
			Procs:      procs,
			TypeArray:  []datatype.Type{datatype.Int, datatype.Double},
			LenArray:   2048,
			SizeAccess: 1,
			Verify:     true,
			FileName:   "interleaved.dat",
		}
		res, err := bench.RunSynthetic(env, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Write.Failed || res.Read.Failed {
			log.Fatalf("%v failed: %s %s", method, res.Write.FailReason, res.Read.FailReason)
		}
		snap := env.FS.Open("interleaved.dat").Snapshot()
		if reference == nil {
			reference = snap
		} else if !bytes.Equal(reference, snap) {
			log.Fatalf("%v produced different file contents", method)
		}
		fmt.Printf("%-7v write %8.1f MB/s (%v)   read %8.1f MB/s (%v)\n",
			method, res.Write.MBs, res.Write.Time, res.Read.MBs, res.Read.Time)
	}
	fmt.Printf("\nall three methods produced identical %d-byte files\n", len(reference))

	loc2, loc3 := bench.ProgramLines()
	fmt.Printf("programming effort: OCIO needs %d lines, TCIO needs %d\n", loc2, loc3)
}
