// Cosmology: checkpoint and restart of the ART mini-app (paper §V.C).
//
// ART's fully threaded trees (FTTs) have data-dependent shapes: each record
// is a different collection of variable-size arrays, which no single MPI
// derived datatype can describe — so OCIO's file views cannot help, and the
// realistic comparison is TCIO versus vanilla MPI-IO. The example dumps a
// checkpoint of refinement trees through both stacks, restarts from it,
// verifies every tree round-trips exactly, and reports throughput.
//
//	go run ./examples/cosmology
package main

import (
	"fmt"
	"log"

	"github.com/tcio/tcio/internal/art"
	"github.com/tcio/tcio/internal/bench"
	"github.com/tcio/tcio/internal/mpi"
)

func main() {
	const (
		procs = 16
		trees = 64
		vars  = 2
		seed  = 7
	)

	for _, lib := range []art.Library{art.LibTCIO, art.LibVanilla} {
		env, err := bench.NewEnv(1)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("art-%v.ckpt", lib)

		var cells, bytes int64
		rep, err := mpi.Run(mpi.Config{Procs: procs, Machine: env.Machine, FS: env.FS}, func(c *mpi.Comm) error {
			// Build this rank's round-robin share of the AMR forest.
			mine := art.GenerateForRank(trees, vars, c.Size(), c.Rank(), seed)
			for _, t := range mine {
				cellsLocal := int64(t.NumCells())
				_ = cellsLocal
			}
			if err := art.Dump(c, lib, name, mine, trees, 0); err != nil {
				return err
			}
			// Simulate a restart: read the checkpoint back and compare.
			restored, err := art.Restore(c, lib, name)
			if err != nil {
				return err
			}
			if len(restored) != len(mine) {
				return fmt.Errorf("restored %d trees, want %d", len(restored), len(mine))
			}
			for i := range mine {
				if !mine[i].Equal(restored[i]) {
					return fmt.Errorf("tree %d corrupted across dump/restart", mine[i].ID)
				}
			}
			if c.Rank() == 0 {
				for _, t := range restored {
					cells += int64(t.NumCells())
				}
				bytes = c.FS().Open(name).Size()
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7v checkpoint: %6.1f KB on disk, dump+restart in %v simulated\n",
			lib, float64(bytes)/1024, rep.MaxTime)
		if lib == art.LibTCIO {
			fmt.Printf("        (rank 0's trees hold %d cells across dynamic octrees)\n", cells)
		}
	}
	fmt.Println("\nboth stacks round-tripped every tree byte-exactly")
}
