module github.com/tcio/tcio

go 1.22
