// Command artbench regenerates the paper's ART cosmology-application
// artifacts: Table IV and Figures 9-10 (checkpoint write and restart read
// throughput, TCIO vs vanilla MPI-IO, strong scaling).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/tcio/tcio/internal/bench"
	"github.com/tcio/tcio/internal/stats"
)

func main() {
	var (
		fig9   = flag.Bool("fig9", false, "regenerate Figure 9 (ART write throughput)")
		fig10  = flag.Bool("fig10", false, "regenerate Figure 10 (ART read throughput)")
		table4 = flag.Bool("table4", false, "print Table IV (segment generation)")
		all    = flag.Bool("all", false, "run everything")
		procs  = flag.String("procs", "64,128,256,512,1024", "comma-separated process counts")
		trees  = flag.Int("trees", 1024, "number of FTT segments (Table IV: 1024)")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet  = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()
	if !*fig9 && !*fig10 && !*table4 && !*all {
		flag.Usage()
		os.Exit(2)
	}
	emit := func(t stats.Table) {
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
	if *table4 || *all {
		emit(bench.Table4())
	}
	if *fig9 || *fig10 || *all {
		opts := bench.DefaultART()
		opts.Trees = *trees
		if !*quiet {
			opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  ", line) }
		}
		var err error
		if opts.Procs, err = parseProcs(*procs); err != nil {
			fmt.Fprintln(os.Stderr, "artbench:", err)
			os.Exit(1)
		}
		w, r, _, err := bench.Fig9And10(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "artbench:", err)
			os.Exit(1)
		}
		if *fig9 || *all {
			emit(w)
		}
		if *fig10 || *all {
			emit(r)
		}
	}
}

func parseProcs(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad process count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
