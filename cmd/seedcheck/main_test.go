package main

import (
	"strings"
	"testing"
)

func TestCheckSourceFlagsGlobalCalls(t *testing.T) {
	src := []byte(`package p

import "math/rand"

func helper() int {
	rand.Seed(42)
	return rand.Intn(10) + int(rand.Int63())
}
`)
	got, err := CheckSource("x_test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("violations = %d, want 3: %v", len(got), got)
	}
	for _, v := range got {
		if !strings.Contains(v, "x_test.go") {
			t.Fatalf("violation missing filename: %s", v)
		}
	}
}

func TestCheckSourceAllowsSeededGenerator(t *testing.T) {
	src := []byte(`package p

import "math/rand"

func helper() int {
	rng := rand.New(rand.NewSource(1))
	return rng.Intn(10)
}
`)
	got, err := CheckSource("x_test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("false positives: %v", got)
	}
}

func TestCheckSourceAllowsShadowedName(t *testing.T) {
	src := []byte(`package p

type gen struct{}

func (gen) Intn(int) int { return 0 }

func helper() int {
	var rand gen
	return rand.Intn(10)
}
`)
	got, err := CheckSource("x_test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("false positives on shadowed name: %v", got)
	}
}

func TestCheckSourceHandlesAlias(t *testing.T) {
	src := []byte(`package p

import mrand "math/rand"

func helper() int { return mrand.Intn(10) }
`)
	got, err := CheckSource("x_test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("violations = %d, want 1: %v", len(got), got)
	}
}

// TestRepoIsClean runs the checker over the repository itself: the seed
// audit this command exists to enforce.
func TestRepoIsClean(t *testing.T) {
	got, err := Check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("repository tests draw from the global generator:\n%s", strings.Join(got, "\n"))
	}
}
