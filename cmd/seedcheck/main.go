// Command seedcheck enforces the repository's determinism rule for tests:
// math/rand must be used through an explicitly seeded generator
// (rand.New(rand.NewSource(seed))), never through the package-level
// functions whose seed varies between runs. A test that draws from the
// global generator produces irreproducible failures — the exact class of
// bug the fault-injection subsystem is designed to keep out.
//
// Usage:
//
//	seedcheck [dir]
//
// Scans every *_test.go under dir (default ".") and exits nonzero listing
// each package-level math/rand call.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// constructors are the math/rand functions that build or feed a seeded
// generator; calling them at package level is the rule, not a violation.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := Check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedcheck:", err)
		os.Exit(2)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "seedcheck: %d unseeded math/rand call(s); use rand.New(rand.NewSource(seed))\n",
			len(violations))
		os.Exit(1)
	}
}

// Check scans test files under root and returns one "file:line: message"
// per package-level math/rand call.
func Check(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		found, err := CheckSource(path, src)
		if err != nil {
			return err
		}
		out = append(out, found...)
		return nil
	})
	return out, err
}

// CheckSource reports the package-level math/rand calls in one file.
func CheckSource(filename string, src []byte) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	// Resolve the local names under which math/rand is imported (usually
	// "rand", possibly aliased or skipped entirely).
	randNames := map[string]bool{}
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "math/rand" {
			continue
		}
		name := "rand"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		randNames[name] = true
	}
	if len(randNames) == 0 {
		return nil, nil
	}
	// Collect identifiers shadowed by local declarations: a variable or
	// parameter named "rand" makes rand.X a method call, not a package call.
	// A simple per-file shadow set errs on the permissive side, which a
	// linter that gates CI should.
	shadowed := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range d.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && randNames[id.Name] {
					shadowed[id.Name] = true
				}
			}
		case *ast.Field:
			for _, id := range d.Names {
				if randNames[id.Name] {
					shadowed[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			for _, id := range d.Names {
				if randNames[id.Name] {
					shadowed[id.Name] = true
				}
			}
		}
		return true
	})
	var out []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || !randNames[pkg.Name] || shadowed[pkg.Name] {
			return true
		}
		if constructors[sel.Sel.Name] {
			return true
		}
		pos := fset.Position(call.Pos())
		out = append(out, fmt.Sprintf("%s:%d: package-level %s.%s draws from the unseeded global generator",
			pos.Filename, pos.Line, pkg.Name, sel.Sel.Name))
		return true
	})
	return out, nil
}
