// Command tciobench regenerates the paper's synthetic-benchmark artifacts:
// Tables I-III and Figures 5-7.
//
// Usage:
//
//	tciobench -fig5              # write+read throughput vs process count
//	tciobench -fig6 -fig7        # throughput vs file size (incl. OOM point)
//	tciobench -tables            # Tables I, II, III
//	tciobench -chaos -seed 7     # fault-injection sweep (seed-deterministic)
//	tciobench -drainsweep        # drain fan-out vs virtual write time
//	tciobench -overlap           # write-behind / prefetch overlap sweep
//	tciobench -overlap -chaos    # overlap under faults (counts-only table)
//	tciobench -nodeagg           # intra-node aggregation sweep (cores/node x segment size)
//	tciobench -nodeagg -chaos    # node aggregation under faults (counts-only table)
//	tciobench -sieve             # noncontiguous read engine sweep (sieve budget x holes x granule)
//	tciobench -sieve -chaos      # sieved reads under faults (counts-only table)
//	tciobench -delegate          # I/O delegation sweep (servers x files x request size) + delegated reads
//	tciobench -delegate -chaos   # delegation under faults (counts-only table)
//	tciobench -delegate-read     # delegated read sweep alone (pattern x server cache x collective)
//	tciobench -scale             # host wall-clock scale sweep (ranks x GOMAXPROCS)
//	tciobench -scale -scale-procs 64 -scale-maxprocs 2   # one small scale point
//	tciobench -crash             # out-of-core budgets + kill-anywhere crash recovery
//	tciobench -crash -crash-kills 12 -crash-budgets 0,2,4,8   # denser crash sweep
//	tciobench -overlap -json results/BENCH_pr3.json   # machine-readable results
//	tciobench -conform -seed 1 -progs 64   # randomized differential conformance sweep
//	tciobench -all               # everything
//	tciobench -procs 64,128 -len-sim 1048576 -len-real 4096   # custom sweep
//
// Simulated datasets follow the paper (LENarray=4M elements, files up to
// 48 GB); -len-real controls how many elements are actually materialized
// per array (the byte-scale mechanism described in DESIGN.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/tcio/tcio/internal/bench"
	"github.com/tcio/tcio/internal/conformance"
	"github.com/tcio/tcio/internal/stats"
)

func main() {
	var (
		fig5       = flag.Bool("fig5", false, "regenerate Figure 5 (throughput vs processes)")
		fig6       = flag.Bool("fig6", false, "regenerate Figure 6 (write throughput vs file size)")
		fig7       = flag.Bool("fig7", false, "regenerate Figure 7 (read throughput vs file size)")
		tables     = flag.Bool("tables", false, "print Tables I, II and III")
		ablations  = flag.Bool("ablations", false, "run the TCIO design-choice ablations")
		chaos      = flag.Bool("chaos", false, "run the fault-injection chaos sweep")
		dsweep     = flag.Bool("drainsweep", false, "sweep TCIO drain fan-out on a multi-OST stripe")
		overlap    = flag.Bool("overlap", false, "sweep write-behind and read-prefetch overlap settings")
		nodeagg    = flag.Bool("nodeagg", false, "sweep intra-node aggregation (cores/node x segment size)")
		sieve      = flag.Bool("sieve", false, "sweep the noncontiguous read engine (sieve budget x hole density x interleave granule)")
		delegate   = flag.Bool("delegate", false, "sweep the I/O delegation tier (server ranks x open files x request size), plus the delegated read sweep")
		dread      = flag.Bool("delegate-read", false, "sweep the delegated read path alone (access pattern x server cache x collective reads)")
		scale      = flag.Bool("scale", false, "sweep host wall-clock scalability (simulated ranks x GOMAXPROCS)")
		scProcs    = flag.String("scale-procs", "64,256,1024,4096", "comma-separated rank counts for -scale")
		scMaxprocs = flag.String("scale-maxprocs", "1,2,4,8", "comma-separated GOMAXPROCS settings for -scale")
		scPieces   = flag.Int("scale-pieces", 32, "strided pieces per rank for -scale")
		scProfiles = flag.Bool("scale-profiles", true, "capture mutex/block profile top entries for -scale")
		crash      = flag.Bool("crash", false, "run the out-of-core / crash-recovery sweep (uses -seed)")
		crKills    = flag.Int("crash-kills", 0, "kill instants replayed per -crash configuration (0 = default)")
		crBudgets  = flag.String("crash-budgets", "", "comma-separated resident-segment budgets for -crash (empty = default)")
		jsonPath   = flag.String("json", "", "also write -overlap results as JSON to this path")
		all        = flag.Bool("all", false, "run everything")
		procs      = flag.String("procs", "64,128,256,512,1024", "comma-separated process counts for -fig5")
		lenSim     = flag.Int("len-sim", 4<<20, "simulated LENarray (elements per array per process)")
		lenReal    = flag.Int("len-real", 4<<10, "materialized elements per array per process")
		seed       = flag.Int64("seed", 1, "fault-injection seed for -chaos")
		rates      = flag.String("chaos-rates", "0,0.01,0.05", "comma-separated OST transient-error rates for -chaos")
		cprocs     = flag.Int("chaos-procs", 64, "process count for -chaos")
		dworkers   = flag.Int("drain-workers", 0, "TCIO drain fan-out for -chaos runs (0 or 1 = serial)")
		verify     = flag.Bool("verify", true, "verify every byte on read-back")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")
		conform    = flag.Bool("conform", false, "run the randomized differential conformance sweep (uses -seed, -progs, -corpus)")
		progs      = flag.Int("progs", 32, "number of generated programs for -conform")
		corpus     = flag.String("corpus", "", "directory receiving shrunk repros of -conform divergences")
	)
	flag.Parse()
	if *conform {
		failures, err := conformance.RunSweep(os.Stdout, *seed, *progs, *corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tciobench:", err)
			os.Exit(1)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}
	if *scale {
		sopts := bench.DefaultScale()
		sopts.PiecesPerRank = *scPieces
		sopts.Profiles = *scProfiles
		sopts.Verify = *verify
		if !*quiet {
			sopts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  ", line) }
		}
		var err error
		if sopts.Procs, err = parseProcs(*scProcs); err == nil {
			sopts.GoMaxProcs, err = parseProcs(*scMaxprocs)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tciobench:", err)
			os.Exit(1)
		}
		t, report, err := bench.Scale(sopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tciobench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var blob []byte
			if blob, err = json.MarshalIndent(report, "", "  "); err == nil {
				err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
			}
			if err == nil && !*quiet {
				fmt.Fprintln(os.Stderr, "  ", "wrote", *jsonPath)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tciobench:", err)
			os.Exit(1)
		}
		return
	}
	if *crash {
		copts := bench.DefaultCrash()
		copts.Seed = *seed
		copts.Verify = *verify
		if *crKills > 0 {
			copts.Kills = *crKills
		}
		if !*quiet {
			copts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  ", line) }
		}
		var err error
		if *crBudgets != "" {
			if copts.Budgets, err = parseBudgets(*crBudgets); err != nil {
				fmt.Fprintln(os.Stderr, "tciobench:", err)
				os.Exit(1)
			}
		}
		t, report, err := bench.Crash(copts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tciobench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var blob []byte
			if blob, err = json.MarshalIndent(report, "", "  "); err == nil {
				err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
			}
			if err == nil && !*quiet {
				fmt.Fprintln(os.Stderr, "  ", "wrote", *jsonPath)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tciobench:", err)
			os.Exit(1)
		}
		return
	}
	if !*fig5 && !*fig6 && !*fig7 && !*tables && !*ablations && !*chaos && !*dsweep && !*overlap && !*nodeagg && !*sieve && !*delegate && !*dread && !*all {
		flag.Usage()
		os.Exit(2)
	}
	// "-overlap -chaos" / "-nodeagg -chaos" / "-sieve -chaos" /
	// "-delegate -chaos" (without -all) mean the feature's chaos table
	// alone, not the regular chaos sweep plus a clean feature sweep.
	overlapChaos := *overlap && *chaos && !*all
	nodeaggChaos := *nodeagg && *chaos && !*all
	sieveChaos := *sieve && *chaos && !*all
	delegateChaos := *delegate && *chaos && !*all
	if err := run(*fig5 || *all, *fig6 || *all, *fig7 || *all, *tables || *all,
		*ablations || *all, (*chaos || *all) && !overlapChaos && !nodeaggChaos && !sieveChaos && !delegateChaos, *dsweep || *all,
		(*overlap || *all) && !overlapChaos, overlapChaos,
		(*nodeagg || *all) && !nodeaggChaos, nodeaggChaos,
		(*sieve || *all) && !sieveChaos, sieveChaos,
		(*delegate || *all) && !delegateChaos, delegateChaos,
		(*delegate || *all) && !delegateChaos || *dread, *jsonPath, *procs, *lenSim, *lenReal,
		*seed, *rates, *cprocs, *dworkers, *verify, *csv, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "tciobench:", err)
		os.Exit(1)
	}
}

func run(fig5, fig6, fig7, tables, ablations, chaos, drainsweep, overlap, overlapChaos,
	nodeagg, nodeaggChaos, sieve, sieveChaos, delegate, delegateChaos, delegateRead bool,
	jsonPath, procsSpec string, lenSim, lenReal int, seed int64, ratesSpec string,
	chaosProcs, drainWorkers int, verify, csv, quiet bool) error {
	emit := func(t stats.Table) error {
		if csv {
			fmt.Printf("# %s\n", t.Title)
			return t.CSV(os.Stdout)
		}
		return t.Render(os.Stdout)
	}
	progress := func(line string) {
		if !quiet {
			fmt.Fprintln(os.Stderr, "  ", line)
		}
	}

	opts := bench.DefaultSweep()
	opts.LenSim = lenSim
	opts.LenReal = lenReal
	opts.Verify = verify
	opts.Progress = progress
	var err error
	if opts.Procs, err = parseProcs(procsSpec); err != nil {
		return err
	}

	if tables {
		if err := emit(bench.Table1()); err != nil {
			return err
		}
		if err := emit(bench.Table2(opts)); err != nil {
			return err
		}
		if err := emit(bench.Table3()); err != nil {
			return err
		}
		loc2, loc3 := bench.ProgramLines()
		r2, r3 := bench.ProgramReadLines()
		fmt.Printf("programming effort: OCIO write=%d read=%d lines; TCIO write=%d read=%d lines\n\n",
			loc2, r2, loc3, r3)
	}

	if fig5 {
		w, r, _, err := bench.Fig5(opts)
		if err != nil {
			return err
		}
		if err := emit(w); err != nil {
			return err
		}
		if err := emit(r); err != nil {
			return err
		}
	}

	if fig6 || fig7 {
		fopts := bench.DefaultFileSizeSweep()
		fopts.LenReal = lenReal
		fopts.Verify = verify
		fopts.Progress = progress
		w, r, _, err := bench.Fig6And7(fopts)
		if err != nil {
			return err
		}
		if fig6 {
			if err := emit(w); err != nil {
				return err
			}
		}
		if fig7 {
			if err := emit(r); err != nil {
				return err
			}
		}
	}

	if ablations {
		aopts := bench.DefaultAblation()
		aopts.LenReal = lenReal
		aopts.Progress = progress
		t, err := bench.Ablations(aopts)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}

	if chaos {
		copts := bench.DefaultChaos()
		copts.Seed = seed
		copts.Procs = chaosProcs
		copts.LenSim = lenSim
		copts.LenReal = lenReal
		copts.DrainWorkers = drainWorkers
		copts.Verify = verify
		copts.Progress = progress
		var err error
		if copts.Rates, err = parseRates(ratesSpec); err != nil {
			return err
		}
		t, err := bench.Chaos(copts)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}

	if drainsweep {
		dopts := bench.DefaultDrainSweep()
		dopts.LenSim = lenSim
		dopts.LenReal = lenReal
		dopts.Verify = verify
		dopts.Progress = progress
		if drainWorkers > 0 {
			dopts.Workers = []int{1, drainWorkers}
		}
		t, err := bench.DrainSweep(dopts)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}

	if overlap || overlapChaos {
		oopts := bench.DefaultOverlap()
		oopts.LenSim = lenSim
		oopts.LenReal = lenReal
		oopts.Verify = verify
		oopts.Progress = progress
		if drainWorkers > 0 {
			oopts.Workers = drainWorkers
		}
		if overlapChaos {
			t, err := bench.OverlapChaos(oopts, seed)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
		}
		if overlap {
			wt, rt, report, err := bench.Overlap(oopts)
			if err != nil {
				return err
			}
			if err := emit(wt); err != nil {
				return err
			}
			if err := emit(rt); err != nil {
				return err
			}
			if jsonPath != "" {
				blob, err := json.MarshalIndent(report, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				if !quiet {
					fmt.Fprintln(os.Stderr, "  ", "wrote", jsonPath)
				}
			}
		}
	}

	if nodeagg || nodeaggChaos {
		nopts := bench.DefaultNodeAgg()
		nopts.Verify = verify
		nopts.Progress = progress
		if nodeaggChaos {
			t, err := bench.NodeAggChaos(nopts, seed)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
		}
		if nodeagg {
			t, report, err := bench.NodeAgg(nopts)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
			if jsonPath != "" {
				blob, err := json.MarshalIndent(report, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				if !quiet {
					fmt.Fprintln(os.Stderr, "  ", "wrote", jsonPath)
				}
			}
		}
	}

	if sieve || sieveChaos {
		sopts := bench.DefaultSieve()
		sopts.Verify = verify
		sopts.Progress = progress
		if sieveChaos {
			t, err := bench.SieveChaos(sopts, seed)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
		}
		if sieve {
			holes, inter, report, err := bench.Sieve(sopts)
			if err != nil {
				return err
			}
			if err := emit(holes); err != nil {
				return err
			}
			if err := emit(inter); err != nil {
				return err
			}
			if jsonPath != "" {
				blob, err := json.MarshalIndent(report, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				if !quiet {
					fmt.Fprintln(os.Stderr, "  ", "wrote", jsonPath)
				}
			}
		}
	}

	if delegate || delegateChaos || delegateRead {
		dlopts := bench.DefaultDelegate()
		dlopts.Verify = verify
		dlopts.Progress = progress
		if delegateChaos {
			t, err := bench.DelegateChaos(dlopts, seed)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
		}
		var report *bench.DelegateReport
		if delegate {
			t, rep, err := bench.Delegate(dlopts)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
			report = rep
		}
		if delegateRead {
			ropts := bench.DefaultDelegateRead()
			ropts.Verify = verify
			ropts.Progress = progress
			t, points, err := bench.DelegateRead(ropts)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
			if report != nil {
				report.ReadPoints = points
			}
		}
		if report != nil && jsonPath != "" {
			blob, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			if !quiet {
				fmt.Fprintln(os.Stderr, "  ", "wrote", jsonPath)
			}
		}
	}
	return nil
}

func parseRates(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("bad error rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseBudgets(spec string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad segment budget %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseProcs(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad process count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
