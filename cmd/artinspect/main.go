// Command artinspect works with ART checkpoint files: it can generate one
// (running a simulated dump and exporting the bytes) and inspect one
// (parsing the index and every FTT record), which is how the self-
// describing format of the paper's §V.C can be examined on disk.
//
//	artinspect -generate ckpt.art -trees 32
//	artinspect -inspect ckpt.art
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"github.com/tcio/tcio/internal/art"
	"github.com/tcio/tcio/internal/cluster"
	"github.com/tcio/tcio/internal/mpi"
	"github.com/tcio/tcio/internal/stats"
)

func main() {
	var (
		generate = flag.String("generate", "", "write a freshly generated checkpoint to this path")
		inspect  = flag.String("inspect", "", "parse and describe the checkpoint at this path")
		trees    = flag.Int("trees", 32, "trees to generate")
		vars     = flag.Int("vars", 2, "variables per cell")
		procs    = flag.Int("procs", 8, "simulated ranks for -generate")
		seed     = flag.Int64("seed", art.TableIV.Seed, "generation seed")
	)
	flag.Parse()
	switch {
	case *generate != "":
		if err := doGenerate(*generate, *trees, *vars, *procs, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "artinspect:", err)
			os.Exit(1)
		}
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "artinspect:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doGenerate(path string, trees, vars, procs int, seed int64) error {
	var snapshot []byte
	_, err := mpi.Run(mpi.Config{Procs: procs, Machine: cluster.Lonestar()}, func(c *mpi.Comm) error {
		mine := art.GenerateForRank(trees, vars, c.Size(), c.Rank(), seed)
		if err := art.Dump(c, art.LibTCIO, "export", mine, trees, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			snapshot = c.FS().Open("export").Snapshot()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, snapshot, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d trees, %d bytes\n", path, trees, len(snapshot))
	return nil
}

func doInspect(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 12 {
		return fmt.Errorf("file too short (%d bytes)", len(raw))
	}
	if got := binary.LittleEndian.Uint32(raw); got != 0x41525443 {
		return fmt.Errorf("bad checkpoint magic %#x", got)
	}
	ntrees := int(binary.LittleEndian.Uint64(raw[4:]))
	need := 12 + (ntrees+1)*8
	if len(raw) < need {
		return fmt.Errorf("index truncated: need %d bytes, have %d", need, len(raw))
	}
	offsets := make([]int64, ntrees+1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(raw[12+8*i:]))
	}
	fmt.Printf("%s: ART checkpoint, %d trees, %d bytes\n\n", path, ntrees, len(raw))

	t := stats.Table{
		Headers: []string{"tree", "offset", "bytes", "depth", "cells", "vars"},
	}
	totalCells := 0
	for i := 0; i < ntrees; i++ {
		if offsets[i+1] > int64(len(raw)) {
			return fmt.Errorf("tree %d extends past end of file", i)
		}
		rec := raw[offsets[i]:offsets[i+1]]
		tree, err := art.Decode(rec)
		if err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
		totalCells += tree.NumCells()
		t.AddRow(fmt.Sprint(tree.ID), fmt.Sprint(offsets[i]), fmt.Sprint(len(rec)),
			fmt.Sprint(tree.Depth()), fmt.Sprint(tree.NumCells()), fmt.Sprint(tree.Vars))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("total: %d cells across %d adaptive refinement trees\n", totalCells, ntrees)
	return nil
}
