// Command loccount reproduces the paper's programming-effort comparison:
// it reports the effective lines of code of Program 2 (the benchmark
// written against OCIO: combine buffer, derived datatypes, file view,
// collective call) and Program 3 (the same workload against TCIO: plain
// seek-and-write calls), and can print both sources side by side.
package main

import (
	"flag"
	"fmt"

	"github.com/tcio/tcio/internal/bench"
)

func main() {
	show := flag.Bool("show", false, "print the two programs' sources")
	flag.Parse()

	w2, w3 := bench.ProgramLines()
	r2, r3 := bench.ProgramReadLines()
	fmt.Printf("Programming effort (effective lines of code)\n")
	fmt.Printf("                      OCIO (Program 2)   TCIO (Program 3)\n")
	fmt.Printf("write path            %-18d %d\n", w2, w3)
	fmt.Printf("read path             %-18d %d\n", r2, r3)
	fmt.Printf("\nTCIO needs %.1fx less code on the write path.\n", float64(w2)/float64(w3))

	if *show {
		p2, p3 := bench.ProgramSources()
		fmt.Println("\n===== Program 2 (OCIO) =====")
		fmt.Println(p2)
		fmt.Println("\n===== Program 3 (TCIO) =====")
		fmt.Println(p3)
	}
}
