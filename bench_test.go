// Package tcio_test holds the repository-level benchmark suite: one
// testing.B benchmark per table and figure of the paper, plus ablations of
// the design choices DESIGN.md calls out. These run miniature versions of
// the experiments (few ranks, small arrays) so `go test -bench=.` finishes
// quickly; cmd/tciobench and cmd/artbench regenerate the full-scale curves.
//
// Every benchmark reports the simulated aggregate throughput as the custom
// metric "simMB/s" — the quantity on the paper's y-axes. Wall-clock ns/op
// measures the simulator itself, not the modelled system.
package tcio_test

import (
	"fmt"
	"testing"

	"github.com/tcio/tcio/internal/art"
	"github.com/tcio/tcio/internal/bench"
	"github.com/tcio/tcio/internal/datatype"
	"github.com/tcio/tcio/internal/stats"
)

// syntheticPoint runs one (method, procs) point of the synthetic benchmark
// and reports simulated throughput.
func syntheticPoint(b *testing.B, method bench.Method, procs, lenReal int, scale int64, mutate func(*bench.SyntheticConfig)) (write, read float64) {
	b.Helper()
	var wSum, rSum float64
	for i := 0; i < b.N; i++ {
		env, err := bench.NewEnv(scale)
		if err != nil {
			b.Fatal(err)
		}
		cfg := bench.SyntheticConfig{
			Method:     method,
			Procs:      procs,
			TypeArray:  []datatype.Type{datatype.Int, datatype.Double},
			LenArray:   lenReal,
			SizeAccess: 1,
			Verify:     true,
			FileName:   fmt.Sprintf("bench-%v-%d", method, procs),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := bench.RunSynthetic(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Write.Failed || res.Read.Failed {
			b.Fatalf("point failed: %s %s", res.Write.FailReason, res.Read.FailReason)
		}
		wSum += res.Write.MBs
		rSum += res.Read.MBs
	}
	return wSum / float64(b.N), rSum / float64(b.N)
}

// BenchmarkTable1Params regenerates Table I (parameter definitions).
func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table1().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3LinesOfCode regenerates Table III's programming-effort
// comparison from the embedded Program 2/3 sources.
func BenchmarkTable3LinesOfCode(b *testing.B) {
	var loc2, loc3 int
	for i := 0; i < b.N; i++ {
		loc2, loc3 = bench.ProgramLines()
		if loc3 >= loc2 {
			b.Fatal("TCIO program not shorter")
		}
	}
	b.ReportMetric(float64(loc2), "ocioLoC")
	b.ReportMetric(float64(loc3), "tcioLoC")
}

// BenchmarkFig5Write measures the write side of Figure 5 at a reduced
// process count for both methods.
func BenchmarkFig5Write(b *testing.B) {
	for _, m := range []bench.Method{bench.MethodTCIO, bench.MethodOCIO} {
		b.Run(m.String(), func(b *testing.B) {
			w, _ := syntheticPoint(b, m, 16, 1024, 256, nil)
			b.ReportMetric(w, "simMB/s")
		})
	}
}

// BenchmarkFig5Read measures the read side of Figure 5.
func BenchmarkFig5Read(b *testing.B) {
	for _, m := range []bench.Method{bench.MethodTCIO, bench.MethodOCIO} {
		b.Run(m.String(), func(b *testing.B) {
			_, r := syntheticPoint(b, m, 16, 1024, 256, nil)
			b.ReportMetric(r, "simMB/s")
		})
	}
}

// BenchmarkFig6 measures write throughput vs file size (one mid-size point
// per method); the OOM reproduction at the 48 GB point is covered by the
// bench package's tests.
func BenchmarkFig6(b *testing.B) {
	for _, m := range []bench.Method{bench.MethodTCIO, bench.MethodOCIO} {
		b.Run(m.String(), func(b *testing.B) {
			w, _ := syntheticPoint(b, m, 12, 1024, 1024, nil)
			b.ReportMetric(w, "simMB/s")
		})
	}
}

// BenchmarkFig7 measures read throughput vs file size.
func BenchmarkFig7(b *testing.B) {
	for _, m := range []bench.Method{bench.MethodTCIO, bench.MethodOCIO} {
		b.Run(m.String(), func(b *testing.B) {
			_, r := syntheticPoint(b, m, 12, 1024, 1024, nil)
			b.ReportMetric(r, "simMB/s")
		})
	}
}

// artPoint runs one (library, procs) ART checkpoint/restart point.
func artPoint(b *testing.B, lib art.Library, procs int) (write, read float64) {
	b.Helper()
	opts := bench.ARTOptions{
		Procs:      []int{procs},
		Trees:      64,
		Vars:       2,
		MuCells:    256,
		SigmaCells: 32,
		Seed:       art.TableIV.Seed,
		Scale:      1,
	}
	var wSum, rSum float64
	for i := 0; i < b.N; i++ {
		_, _, results, err := bench.Fig9And10(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Failed {
				b.Fatalf("%v failed: %s", r.Library, r.FailReason)
			}
			if r.Library == lib {
				wSum += r.WriteMBs
				rSum += r.ReadMBs
			}
		}
	}
	return wSum / float64(b.N), rSum / float64(b.N)
}

// BenchmarkFig9 measures ART checkpoint write throughput, TCIO vs vanilla.
func BenchmarkFig9(b *testing.B) {
	for _, lib := range []art.Library{art.LibTCIO, art.LibVanilla} {
		b.Run(lib.String(), func(b *testing.B) {
			w, _ := artPoint(b, lib, 8)
			b.ReportMetric(w, "simMB/s")
		})
	}
}

// BenchmarkFig10 measures ART restart read throughput.
func BenchmarkFig10(b *testing.B) {
	for _, lib := range []art.Library{art.LibTCIO, art.LibVanilla} {
		b.Run(lib.String(), func(b *testing.B) {
			_, r := artPoint(b, lib, 8)
			b.ReportMetric(r, "simMB/s")
		})
	}
}

// BenchmarkTable4Segments regenerates the Table IV distribution and checks
// its statistics.
func BenchmarkTable4Segments(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		sizes := art.SegmentSizes(art.TableIV.Segments, art.TableIV.Mu, art.TableIV.Sigma, art.TableIV.Seed)
		var s stats.Sample
		for _, v := range sizes {
			s.Add(float64(v))
		}
		mean = s.Mean()
	}
	b.ReportMetric(mean, "meanCells")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationLevel1 compares TCIO with and without the level-1
// coalescing buffer: without it, every piece is its own one-sided transfer.
func BenchmarkAblationLevel1(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "coalesced"
		if disable {
			name = "perPiece"
		}
		b.Run(name, func(b *testing.B) {
			w, _ := syntheticPoint(b, bench.MethodTCIO, 16, 1024, 256, func(cfg *bench.SyntheticConfig) {
				cfg.Level1Disabled = disable
			})
			b.ReportMetric(w, "simMB/s")
		})
	}
}

// BenchmarkAblationSegmentSize varies the level-2 segment size around the
// file system stripe size — §IV.A argues the stripe (lock granularity) is
// the right choice.
func BenchmarkAblationSegmentSize(b *testing.B) {
	for _, frac := range []struct {
		name string
		mul  float64
	}{{"quarterStripe", 0.25}, {"stripe", 1}, {"fourStripes", 4}} {
		b.Run(frac.name, func(b *testing.B) {
			w, _ := syntheticPoint(b, bench.MethodTCIO, 16, 1024, 256, func(cfg *bench.SyntheticConfig) {
				cfg.SegmentSizeMultiplier = frac.mul
			})
			b.ReportMetric(w, "simMB/s")
		})
	}
}

// BenchmarkAblationPopulate compares read-side segment population at Open
// (owners read their own segments) against demand population under the
// exclusive window lock.
func BenchmarkAblationPopulate(b *testing.B) {
	for _, demand := range []bool{false, true} {
		name := "preload"
		if demand {
			name = "demand"
		}
		b.Run(name, func(b *testing.B) {
			_, r := syntheticPoint(b, bench.MethodTCIO, 16, 1024, 256, func(cfg *bench.SyntheticConfig) {
				cfg.DemandPopulate = demand
			})
			b.ReportMetric(r, "simMB/s")
		})
	}
}

// BenchmarkAblationOneSided compares TCIO's one-sided transfers against an
// emulation that charges two-sided messaging costs for the same traffic.
func BenchmarkAblationOneSided(b *testing.B) {
	for _, twoSided := range []bool{false, true} {
		name := "oneSided"
		if twoSided {
			name = "twoSided"
		}
		b.Run(name, func(b *testing.B) {
			w, _ := syntheticPoint(b, bench.MethodTCIO, 16, 1024, 256, func(cfg *bench.SyntheticConfig) {
				cfg.EmulateTwoSided = twoSided
			})
			b.ReportMetric(w, "simMB/s")
		})
	}
}
